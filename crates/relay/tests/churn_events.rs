//! Acceptance: killing a relay mid-run produces real membership events
//! at the directory authority, and replaying those events through
//! `EpochSchedule::realize_from_active` yields `EpochView`s consistent
//! with the `ChurnModel` semantics — a departed node is not active, is
//! never compromised, and the compromised subset follows the rotation
//! policy over the *surviving* membership.

use std::net::TcpStream;
use std::time::Duration;

use anonroute_core::epochs::{EpochSchedule, RotationPolicy};
use anonroute_core::{ChurnModel, PathKind, PathLengthDist};
use anonroute_relay::authority::active_at;
use anonroute_relay::{
    AuthorityClient, AuthorityServer, ClusterConfig, RelayDescriptor, SharedCellSpec, SharedCluster,
};

#[test]
fn killing_a_relay_feeds_real_membership_events_into_epoch_views() {
    const N: usize = 5;
    const C: usize = 1;
    let net_seed = b"churn-events-test";

    // one standing network, plus a directory authority tracking it
    let mut config = ClusterConfig::new(N, PathLengthDist::fixed(1));
    config.seed = 23;
    let shared = SharedCluster::boot(&config).unwrap();
    let directory = shared.directory();
    let server =
        AuthorityServer::spawn("127.0.0.1:0", net_seed, directory.receiver(), None).unwrap();
    let client = AuthorityClient::new(server.addr());
    for node in directory.nodes() {
        let desc = RelayDescriptor::derive(net_seed, node.id as u64, node.addr, 1);
        client.publish(&desc.sign(net_seed)).unwrap();
    }
    let joined_version = client.ping().unwrap();
    assert_eq!(server.member_ids(), (0..N as u64).collect::<Vec<_>>());

    // epoch 1: full membership carries traffic
    let spec = |n: usize, epoch: u64| SharedCellSpec {
        n,
        dist: PathLengthDist::fixed(1),
        path_kind: PathKind::Simple,
        seed: 6,
        epoch,
        deliver_timeout: Duration::from_secs(30),
    };
    let arrivals = |n: usize| {
        (0..8)
            .map(|i| anonroute_sim::traffic::Arrival {
                at: anonroute_sim::SimTime::ZERO,
                sender: i % n,
                payload: vec![i as u8; 8],
            })
            .collect::<Vec<_>>()
    };
    let epoch0 = shared.run_cell(&spec(N, 0), &arrivals(N)).unwrap();
    assert_eq!(epoch0.deliveries.len(), 8);

    // kill the last relay mid-run; its port goes dead, which is exactly
    // the signal the gossip peer-health check acts on — emulate one
    // failed dial and the resulting DOWN report
    let dead = N - 1;
    let dead_addr = directory.node(dead).unwrap().addr;
    shared.kill_relay(dead).unwrap();
    assert!(
        TcpStream::connect_timeout(&dead_addr, Duration::from_millis(500)).is_err(),
        "a killed relay must stop accepting"
    );
    let down_version = client.report_down(dead as u64).unwrap();
    assert!(
        down_version > joined_version,
        "the directory version must advance on departure"
    );
    assert_eq!(server.member_ids(), (0..dead as u64).collect::<Vec<_>>());

    // replay the authority's real event log into per-epoch active sets
    let (events, version) = client.events(0).unwrap();
    assert_eq!(version, down_version);
    let before = active_at(&events, joined_version);
    let after = active_at(&events, down_version);
    assert_eq!(before, (0..N).collect::<Vec<_>>());
    assert_eq!(after, (0..dead).collect::<Vec<_>>());

    // realize the measured membership exactly like a synthetic churn
    // model would: the dead node is inactive and never compromised, and
    // the Static policy compromises the last C of the *survivors*
    let schedule = EpochSchedule {
        epochs: 2,
        rotation: RotationPolicy::Static,
        churn: ChurnModel::None, // ignored: the observations are ground truth
    };
    let views = schedule
        .realize_from_active(N, C, 23, &[before, after])
        .unwrap();
    assert!(views[0].is_active(dead));
    assert!(!views[1].is_active(dead));
    assert!(!views[1].compromised.contains(&dead));
    assert_eq!(views[1].active, (0..dead).collect::<Vec<_>>());
    assert_eq!(views[1].compromised, vec![dead - 1]);

    // epoch 2 runs over the surviving prefix with re-keyed circuits
    let ne = views[1].n();
    let epoch1 = shared.run_cell(&spec(ne, 1), &arrivals(ne)).unwrap();
    assert_eq!(epoch1.deliveries.len(), 8);

    server.shutdown();
    shared.shutdown().unwrap();
}
