//! Property tests for the directory authority's descriptor format and
//! the gossip merge: encode/sign/verify round-trips survive arbitrary
//! inputs, tampering and stale versions are always rejected, and k views
//! converge to identical fingerprints under any snapshot exchange order.

use std::net::SocketAddr;

use anonroute_relay::authority::NetworkView;
use anonroute_relay::{RelayDescriptor, SignedDescriptor};
use proptest::prelude::*;

fn addr_of(port: u16) -> SocketAddr {
    format!("127.0.0.1:{}", port.max(1))
        .parse()
        .expect("loopback addr")
}

fn receiver_addr() -> SocketAddr {
    "127.0.0.1:65535".parse().expect("loopback addr")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn descriptors_roundtrip_for_any_inputs(
        net_seed in proptest::collection::vec(any::<u8>(), 8..=64),
        id in 0u64..1_000_000,
        port in 1u16..u16::MAX,
        version in 0u64..u64::MAX / 2,
        weight in 1u32..u32::MAX,
        leaving in any::<bool>(),
    ) {
        let mut desc = RelayDescriptor::derive(&net_seed, id, addr_of(port), version);
        desc.bandwidth_weight = weight;
        desc.leaving = leaving;
        let signed = desc.sign(&net_seed);
        prop_assert!(signed.verify(&net_seed));

        let decoded = SignedDescriptor::decode(&signed.encode()).unwrap();
        prop_assert_eq!(&decoded.descriptor, &signed.descriptor);
        prop_assert_eq!(decoded.sig, signed.sig);
        prop_assert!(decoded.verify(&net_seed));
    }

    #[test]
    fn tampered_bytes_never_verify_or_decode_equal(
        net_seed in proptest::collection::vec(any::<u8>(), 8..=48),
        id in 0u64..1000,
        port in 1u16..u16::MAX,
        version in 0u64..1_000_000,
        flip_at in any::<usize>(),
        flip_bit in 0u8..8,
    ) {
        let signed = RelayDescriptor::derive(&net_seed, id, addr_of(port), version).sign(&net_seed);
        let encoded = signed.encode();
        let mut tampered = encoded.clone();
        let at = flip_at % tampered.len();
        tampered[at] ^= 1 << flip_bit;
        prop_assert_ne!(&tampered, &encoded);
        // a flipped bit either breaks the framing outright or yields a
        // descriptor whose MAC no longer verifies
        if let Ok(decoded) = SignedDescriptor::decode(&tampered) {
            prop_assert!(!decoded.verify(&net_seed));
        }
    }

    #[test]
    fn views_reject_stale_versions_and_foreign_signatures(
        net_seed in proptest::collection::vec(any::<u8>(), 8..=48),
        id in 0u64..100,
        port in 1u16..u16::MAX,
        fresh in 1u64..10_000,
        staleness in 1u64..1000,
    ) {
        let mut view = NetworkView::new(&net_seed, receiver_addr());
        let current = RelayDescriptor::derive(&net_seed, id, addr_of(port), fresh).sign(&net_seed);
        view.publish(current).unwrap();

        // republishing anything at or below the accepted version fails
        let stale_version = fresh.saturating_sub(staleness);
        let stale = RelayDescriptor::derive(&net_seed, id, addr_of(port), stale_version).sign(&net_seed);
        prop_assert!(view.publish(stale).is_err());
        let same = RelayDescriptor::derive(&net_seed, id, addr_of(port), fresh).sign(&net_seed);
        prop_assert!(view.publish(same).is_err());

        // a descriptor signed under a different network seed is rejected
        let mut foreign_seed = net_seed.clone();
        foreign_seed.push(0xFF);
        let foreign =
            RelayDescriptor::derive(&foreign_seed, id, addr_of(port), fresh + 1).sign(&foreign_seed);
        prop_assert!(view.publish(foreign).is_err());
        prop_assert_eq!(view.member_ids(), vec![id]);
    }

    #[test]
    fn gossip_converges_regardless_of_message_order(
        relays in 2usize..6,
        exchanges in proptest::collection::vec(any::<u64>(), 8..=40),
        downs in proptest::collection::vec(0u64..6, 0..=3),
    ) {
        let net_seed = b"prop-gossip-seed".to_vec();
        let mut views: Vec<NetworkView> = (0..relays)
            .map(|_| NetworkView::new(&net_seed, receiver_addr()))
            .collect();
        // each view starts knowing only itself
        for (i, view) in views.iter_mut().enumerate() {
            let desc = RelayDescriptor::derive(&net_seed, i as u64, addr_of(9000 + i as u16), 1);
            view.publish(desc.sign(&net_seed)).unwrap();
        }
        // a few departures reported at arbitrary members
        for (i, &down) in downs.iter().enumerate() {
            views[i % relays].report_down(down % relays as u64);
        }
        // exchange snapshots in an arbitrary order...
        for &pick in &exchanges {
            let from = (pick % relays as u64) as usize;
            let to = ((pick >> 8) % relays as u64) as usize;
            if from == to {
                continue;
            }
            let snap = views[from].snapshot();
            views[to].merge_snapshot(&snap).unwrap();
        }
        // ...then close the loop deterministically: everyone pushes to
        // everyone twice, which dominates any partial exchange history
        for _ in 0..2 {
            for from in 0..relays {
                let snap = views[from].snapshot();
                for (to, view) in views.iter_mut().enumerate() {
                    if from != to {
                        view.merge_snapshot(&snap).unwrap();
                    }
                }
            }
        }
        let reference = views[0].fingerprint();
        for view in &views[1..] {
            prop_assert_eq!(view.fingerprint(), reference);
        }
        // merges are idempotent: replaying any snapshot changes nothing
        let replay = views[relays - 1].snapshot();
        let changed = views[0].merge_snapshot(&replay).unwrap();
        prop_assert!(!changed);
        prop_assert_eq!(views[0].fingerprint(), reference);
    }
}
