//! Long-term node keys and deterministic key provisioning.
//!
//! The paper's systems predate modern key-exchange; classic Chaum mixes
//! assume the sender knows a key for every mix. We model that with
//! symmetric 256-bit master keys per node, provisioned from a deployment
//! seed via HKDF. Per-packet layer keys are derived from the master key
//! and the packet nonce, so master keys never encrypt data directly.

use crate::hkdf;

/// A node's long-term 256-bit master key.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct MasterKey(pub [u8; 32]);

impl std::fmt::Debug for MasterKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // never print key material
        write!(f, "MasterKey(…)")
    }
}

impl MasterKey {
    /// Derives the per-packet `(encryption, mac)` key pair bound to a
    /// packet nonce.
    pub fn layer_keys(&self, nonce: &[u8; 12]) -> ([u8; 32], [u8; 32]) {
        let mut enc = [0u8; 32];
        let mut mac = [0u8; 32];
        hkdf::derive(nonce, &self.0, b"anonroute-onion-enc-v1", &mut enc);
        hkdf::derive(nonce, &self.0, b"anonroute-onion-mac-v1", &mut mac);
        (enc, mac)
    }
}

/// Key material for a whole deployment: one master key per member node.
///
/// # Examples
///
/// ```
/// use anonroute_crypto::keys::KeyStore;
/// let ks = KeyStore::from_seed(b"deployment-2026", 16);
/// assert_eq!(ks.len(), 16);
/// assert_ne!(ks.key(0), ks.key(1));
/// ```
#[derive(Debug, Clone)]
pub struct KeyStore {
    keys: Vec<MasterKey>,
}

impl KeyStore {
    /// Deterministically provisions `n` node keys from a deployment seed.
    pub fn from_seed(seed: &[u8], n: usize) -> Self {
        let mut keys = Vec::with_capacity(n);
        for i in 0..n {
            let mut key = [0u8; 32];
            let info = [b"anonroute-node-key-v1" as &[u8], &(i as u64).to_be_bytes()].concat();
            hkdf::derive(b"anonroute-keystore", seed, &info, &mut key);
            keys.push(MasterKey(key));
        }
        KeyStore { keys }
    }

    /// Number of provisioned nodes.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The master key of node `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn key(&self, id: usize) -> MasterKey {
        self.keys[id]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn provisioning_is_deterministic() {
        let a = KeyStore::from_seed(b"seed", 4);
        let b = KeyStore::from_seed(b"seed", 4);
        for i in 0..4 {
            assert_eq!(a.key(i), b.key(i));
        }
    }

    #[test]
    fn different_seeds_give_different_keys() {
        let a = KeyStore::from_seed(b"seed-a", 2);
        let b = KeyStore::from_seed(b"seed-b", 2);
        assert_ne!(a.key(0), b.key(0));
    }

    #[test]
    fn all_node_keys_are_distinct() {
        let ks = KeyStore::from_seed(b"x", 64);
        for i in 0..64 {
            for j in (i + 1)..64 {
                assert_ne!(ks.key(i), ks.key(j), "{i} vs {j}");
            }
        }
    }

    #[test]
    fn layer_keys_bound_to_nonce_and_purpose() {
        let k = KeyStore::from_seed(b"x", 1).key(0);
        let (e1, m1) = k.layer_keys(&[1u8; 12]);
        let (e2, m2) = k.layer_keys(&[2u8; 12]);
        assert_ne!(e1, e2);
        assert_ne!(m1, m2);
        assert_ne!(e1, m1);
    }

    #[test]
    fn debug_never_leaks_key_bytes() {
        let k = MasterKey([0xab; 32]);
        let s = format!("{k:?}");
        assert!(!s.contains("ab"));
    }
}
