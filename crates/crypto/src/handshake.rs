//! Ephemeral→static key agreement for onion layers.
//!
//! Deployed onion systems do not pre-share symmetric keys: the sender
//! learns each router's long-term *public* key from a directory and
//! derives per-hop layer keys with an ephemeral Diffie–Hellman exchange
//! (the design of Tor's original onions and of Sphinx). This module builds
//! that flow on [`crate::x25519`]:
//!
//! * each node holds a static X25519 key pair ([`NodeIdentity`]);
//! * the sender generates one ephemeral key pair per hop, derives
//!   `k = HKDF(X25519(ephemeral, node_static), "layer")`, and places the
//!   ephemeral public key in the clear next to the layer nonce;
//! * the node recomputes `k` from its static private key and the received
//!   ephemeral public key.

use crate::hkdf;
use crate::keys::MasterKey;
use crate::x25519::{public_key, shared_secret};

/// A node's static X25519 identity.
#[derive(Clone)]
pub struct NodeIdentity {
    private: [u8; 32],
    public: [u8; 32],
}

impl std::fmt::Debug for NodeIdentity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "NodeIdentity(pub {:02x}{:02x}..)",
            self.public[0], self.public[1]
        )
    }
}

impl NodeIdentity {
    /// Creates an identity from 32 bytes of private entropy.
    pub fn from_private(private: [u8; 32]) -> Self {
        let public = public_key(&private);
        NodeIdentity { private, public }
    }

    /// Deterministically derives the identity of node `id` from a
    /// directory seed (for tests and reproducible deployments).
    pub fn derive(directory_seed: &[u8], id: u64) -> Self {
        let mut private = [0u8; 32];
        let info = [b"anonroute-identity-v1" as &[u8], &id.to_be_bytes()].concat();
        hkdf::derive(b"anonroute-directory", directory_seed, &info, &mut private);
        Self::from_private(private)
    }

    /// The public key published in the directory.
    pub fn public(&self) -> &[u8; 32] {
        &self.public
    }

    /// Node side of the handshake: recomputes the layer master key from a
    /// sender's ephemeral public key.
    pub fn recv_layer_key(&self, ephemeral_public: &[u8; 32]) -> MasterKey {
        derive_layer_key(
            &shared_secret(&self.private, ephemeral_public),
            ephemeral_public,
        )
    }
}

/// Sender side of the handshake: derives the layer master key for one hop
/// and returns it with the ephemeral public key to embed in the packet.
///
/// `ephemeral_private` must be fresh random bytes per hop per message.
pub fn send_layer_key(
    ephemeral_private: &[u8; 32],
    node_public: &[u8; 32],
) -> (MasterKey, [u8; 32]) {
    let eph_pub = public_key(ephemeral_private);
    let shared = shared_secret(ephemeral_private, node_public);
    (derive_layer_key(&shared, &eph_pub), eph_pub)
}

fn derive_layer_key(shared: &[u8; 32], ephemeral_public: &[u8; 32]) -> MasterKey {
    let mut key = [0u8; 32];
    hkdf::derive(
        ephemeral_public,
        shared,
        b"anonroute-layer-key-v1",
        &mut key,
    );
    MasterKey(key)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sender_and_node_derive_the_same_layer_key() {
        let node = NodeIdentity::derive(b"dir", 7);
        let eph_priv = [0x5au8; 32];
        let (k_sender, eph_pub) = send_layer_key(&eph_priv, node.public());
        let k_node = node.recv_layer_key(&eph_pub);
        assert_eq!(k_sender, k_node);
    }

    #[test]
    fn different_ephemerals_give_different_keys() {
        let node = NodeIdentity::derive(b"dir", 7);
        let (k1, _) = send_layer_key(&[1u8; 32], node.public());
        let (k2, _) = send_layer_key(&[2u8; 32], node.public());
        assert_ne!(k1, k2);
    }

    #[test]
    fn different_nodes_give_different_keys() {
        let a = NodeIdentity::derive(b"dir", 1);
        let b = NodeIdentity::derive(b"dir", 2);
        assert_ne!(a.public(), b.public());
        let eph = [9u8; 32];
        let (ka, _) = send_layer_key(&eph, a.public());
        let (kb, _) = send_layer_key(&eph, b.public());
        assert_ne!(ka, kb);
    }

    #[test]
    fn wrong_node_cannot_recover_the_key() {
        let a = NodeIdentity::derive(b"dir", 1);
        let b = NodeIdentity::derive(b"dir", 2);
        let (k_for_a, eph_pub) = send_layer_key(&[3u8; 32], a.public());
        assert_ne!(b.recv_layer_key(&eph_pub), k_for_a);
    }

    #[test]
    fn identity_derivation_is_deterministic() {
        let a = NodeIdentity::derive(b"dir", 42);
        let b = NodeIdentity::derive(b"dir", 42);
        assert_eq!(a.public(), b.public());
    }

    #[test]
    fn debug_does_not_print_private_key() {
        let id = NodeIdentity::from_private([0xEE; 32]);
        let s = format!("{id:?}");
        assert!(!s.contains("eeee"));
    }

    #[test]
    fn layer_keys_work_with_the_onion_format() {
        use crate::onion::{peel, seal, Peeled, DELIVER};
        // one hop sealed with a handshake-derived key instead of a
        // pre-shared one
        let node = NodeIdentity::derive(b"dir", 3);
        let (layer_key, eph_pub) = send_layer_key(&[0x11u8; 32], node.public());
        let nonce = [4u8; 12];
        let plaintext = b"end-to-end payload";
        let cell = seal(&layer_key, &nonce, DELIVER, plaintext).unwrap();

        // node side: recompute the key from the ephemeral and peel
        let recovered = node.recv_layer_key(&eph_pub);
        match peel(&recovered, &cell).unwrap() {
            Peeled::Deliver { payload } => assert_eq!(payload, plaintext),
            other => panic!("unexpected {other:?}"),
        }
    }
}
