//! HKDF with SHA-256 (RFC 5869): extract-and-expand key derivation, used
//! to derive independent per-layer encryption and MAC keys from a node's
//! long-term key and a packet nonce.

use crate::hmac::hmac_sha256;
use crate::sha256::DIGEST_LEN;

/// HKDF-Extract: `PRK = HMAC-SHA-256(salt, ikm)`.
pub fn extract(salt: &[u8], ikm: &[u8]) -> [u8; DIGEST_LEN] {
    hmac_sha256(salt, ikm)
}

/// HKDF-Expand: derives `out.len()` bytes of keying material from `prk`
/// and `info`.
///
/// # Panics
///
/// Panics if more than `255 * 32` bytes are requested (RFC 5869 limit).
pub fn expand(prk: &[u8; DIGEST_LEN], info: &[u8], out: &mut [u8]) {
    assert!(out.len() <= 255 * DIGEST_LEN, "hkdf output too long");
    let mut t: Vec<u8> = Vec::new();
    let mut generated = 0;
    let mut counter = 1u8;
    while generated < out.len() {
        let mut msg = t.clone();
        msg.extend_from_slice(info);
        msg.push(counter);
        let block = hmac_sha256(prk, &msg);
        let take = (out.len() - generated).min(DIGEST_LEN);
        out[generated..generated + take].copy_from_slice(&block[..take]);
        generated += take;
        t = block.to_vec();
        counter += 1;
    }
}

/// One-call extract-then-expand.
pub fn derive(salt: &[u8], ikm: &[u8], info: &[u8], out: &mut [u8]) {
    let prk = extract(salt, ikm);
    expand(&prk, info, out);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn rfc5869_test_case_1() {
        let ikm = [0x0bu8; 22];
        let salt = unhex("000102030405060708090a0b0c");
        let info = unhex("f0f1f2f3f4f5f6f7f8f9");
        let prk = extract(&salt, &ikm);
        assert_eq!(
            hex(&prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        );
        let mut okm = [0u8; 42];
        expand(&prk, &info, &mut okm);
        assert_eq!(
            hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf\
             34007208d5b887185865"
        );
    }

    #[test]
    fn rfc5869_test_case_2_long_io() {
        let ikm: Vec<u8> = (0x00u8..=0x4f).collect();
        let salt: Vec<u8> = (0x60u8..=0xaf).collect();
        let info: Vec<u8> = (0xb0u8..=0xff).collect();
        let mut okm = [0u8; 82];
        derive(&salt, &ikm, &info, &mut okm);
        assert_eq!(
            hex(&okm),
            "b11e398dc80327a1c8e7f78c596a49344f012eda2d4efad8a050cc4c19afa97c\
             59045a99cac7827271cb41c65e590e09da3275600c2f09b8367793a9aca3db71\
             cc30c58179ec3e87c14c01d5c1f3434f1d87"
        );
    }

    #[test]
    fn rfc5869_test_case_3_empty_salt_info() {
        let ikm = [0x0bu8; 22];
        let mut okm = [0u8; 42];
        derive(&[], &ikm, &[], &mut okm);
        assert_eq!(
            hex(&okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d\
             9d201395faa4b61a96c8"
        );
    }

    #[test]
    fn distinct_infos_yield_independent_keys() {
        let mut a = [0u8; 32];
        let mut b = [0u8; 32];
        derive(b"salt", b"ikm", b"enc", &mut a);
        derive(b"salt", b"ikm", b"mac", &mut b);
        assert_ne!(a, b);
    }
}
