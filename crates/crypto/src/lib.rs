//! # anonroute-crypto
//!
//! Self-contained cryptographic substrate for the `anonroute` mix-network
//! reproduction: SHA-256, HMAC-SHA-256, HKDF, the ChaCha20 stream cipher,
//! and fixed-size layered **onion cells** in the style of Chaum mixes /
//! Onion Routing (the systems analyzed by Guan et al., ICDCS 2002).
//!
//! Everything is implemented from scratch (no crypto crates are available
//! in this offline environment) and validated against the official test
//! vectors: FIPS 180-4 for SHA-256, RFC 4231 for HMAC, RFC 5869 for HKDF
//! and RFC 8439 for ChaCha20.
//!
//! **Scope note:** this crate exists so that the simulated protocols carry
//! real layered encryption with authenticated peeling and bitwise
//! unlinkability — the properties the paper's system model presumes. It has
//! not been audited and is not intended for production use outside the
//! simulator.
//!
//! ## Example: route a message through three mixes
//!
//! ```
//! use anonroute_crypto::keys::KeyStore;
//! use anonroute_crypto::onion::{build, frame, peel, Peeled};
//!
//! let keys = KeyStore::from_seed(b"example", 8);
//! let path = [2u16, 5, 7];
//! let nonces = [[1u8; 12], [2u8; 12], [3u8; 12]];
//! let wire = build(&keys, &path, b"hi", &nonces)?;
//! let mut junk = || 0u8; // use a CSPRNG in production
//! let cell = frame(&wire, 512, &mut junk)?;
//!
//! // first mix peels its layer and learns only the next hop
//! match peel(&keys.key(2), &cell)? {
//!     Peeled::Forward { next, .. } => assert_eq!(next, 5),
//!     Peeled::Deliver { .. } => unreachable!(),
//! }
//! # Ok::<(), anonroute_crypto::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chacha20;
pub mod error;
pub mod handshake;
pub mod hkdf;
pub mod hmac;
pub mod keys;
pub mod onion;
pub mod sha256;
pub mod x25519;

pub use error::{Error, Result};
