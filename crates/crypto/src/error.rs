//! Error types for `anonroute-crypto`.

use std::fmt;

/// Errors from onion construction and peeling.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// The route/payload combination does not fit the cell, or routing
    /// parameters are inconsistent.
    PathTooLong(String),
    /// A cell failed structural validation (too short, bad length field).
    Malformed(String),
    /// MAC verification failed: wrong key, corruption, or forgery.
    BadMac,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::PathTooLong(msg) => write!(f, "onion construction failed: {msg}"),
            Error::Malformed(msg) => write!(f, "malformed cell: {msg}"),
            Error::BadMac => write!(f, "message authentication failed"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(Error::BadMac.to_string().contains("authentication"));
        assert!(Error::Malformed("x".into()).to_string().contains("x"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
