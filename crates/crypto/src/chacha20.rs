//! ChaCha20 stream cipher (RFC 8439), implemented from scratch and
//! validated against the RFC test vectors.

/// Key length in bytes.
pub const KEY_LEN: usize = 32;
/// Nonce length in bytes.
pub const NONCE_LEN: usize = 12;

const CONSTANTS: [u32; 4] = [0x61707865, 0x3320646e, 0x79622d32, 0x6b206574];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Computes one 64-byte ChaCha20 keystream block for the given counter.
pub fn block(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], counter: u32) -> [u8; 64] {
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&CONSTANTS);
    for i in 0..8 {
        state[4 + i] =
            u32::from_le_bytes([key[i * 4], key[i * 4 + 1], key[i * 4 + 2], key[i * 4 + 3]]);
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = u32::from_le_bytes([
            nonce[i * 4],
            nonce[i * 4 + 1],
            nonce[i * 4 + 2],
            nonce[i * 4 + 3],
        ]);
    }
    let mut working = state;
    for _ in 0..10 {
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }
    let mut out = [0u8; 64];
    for i in 0..16 {
        let word = working[i].wrapping_add(state[i]);
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

/// XORs `data` in place with the ChaCha20 keystream starting at block
/// `initial_counter` (encryption and decryption are the same operation).
pub fn xor_stream(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    initial_counter: u32,
    data: &mut [u8],
) {
    let mut counter = initial_counter;
    for chunk in data.chunks_mut(64) {
        let ks = block(key, nonce, counter);
        for (b, k) in chunk.iter_mut().zip(ks.iter()) {
            *b ^= k;
        }
        counter = counter.wrapping_add(1);
    }
}

/// Convenience wrapper: returns the XOR of `data` with the keystream.
pub fn apply(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], counter: u32, data: &[u8]) -> Vec<u8> {
    let mut out = data.to_vec();
    xor_stream(key, nonce, counter, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    fn rfc_key() -> [u8; 32] {
        let mut k = [0u8; 32];
        for (i, b) in k.iter_mut().enumerate() {
            *b = i as u8;
        }
        k
    }

    #[test]
    fn rfc8439_block_function_vector() {
        // RFC 8439 section 2.3.2
        let key = rfc_key();
        let nonce: [u8; 12] = unhex("000000090000004a00000000").try_into().unwrap();
        let out = block(&key, &nonce, 1);
        assert_eq!(
            hex(&out),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
        );
    }

    #[test]
    fn rfc8439_encryption_vector() {
        // RFC 8439 section 2.4.2
        let key = rfc_key();
        let nonce: [u8; 12] = unhex("000000000000004a00000000").try_into().unwrap();
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you \
                          only one tip for the future, sunscreen would be it.";
        let ct = apply(&key, &nonce, 1, plaintext);
        assert_eq!(
            hex(&ct),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b\
             f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8\
             07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736\
             5af90bbf74a35be6b40b8eedf2785e42874d"
        );
    }

    #[test]
    fn rfc8439_keystream_all_zero_key() {
        // RFC 8439 appendix A.1 test vector #1: counter 0, zero key/nonce
        let key = [0u8; 32];
        let nonce = [0u8; 12];
        let out = block(&key, &nonce, 0);
        assert_eq!(
            hex(&out),
            "76b8e0ada0f13d90405d6ae55386bd28bdd219b8a08ded1aa836efcc8b770dc7\
             da41597c5157488d7724e03fb8d84a376a43b8f41518a11cc387b669b2ee6586"
        );
    }

    #[test]
    fn xor_is_an_involution() {
        let key = rfc_key();
        let nonce = [7u8; 12];
        let data: Vec<u8> = (0..300u16).map(|i| (i * 7 % 256) as u8).collect();
        let mut buf = data.clone();
        xor_stream(&key, &nonce, 3, &mut buf);
        assert_ne!(buf, data);
        xor_stream(&key, &nonce, 3, &mut buf);
        assert_eq!(buf, data);
    }

    #[test]
    fn different_nonces_give_independent_streams() {
        let key = rfc_key();
        let a = apply(&key, &[1u8; 12], 0, &[0u8; 64]);
        let b = apply(&key, &[2u8; 12], 0, &[0u8; 64]);
        assert_ne!(a, b);
    }

    #[test]
    fn counter_advances_across_chunks() {
        // streaming in one call must equal manual per-block application
        let key = rfc_key();
        let nonce = [9u8; 12];
        let data = [0u8; 130];
        let joined = apply(&key, &nonce, 5, &data);
        let mut manual = Vec::new();
        manual.extend_from_slice(&block(&key, &nonce, 5));
        manual.extend_from_slice(&block(&key, &nonce, 6));
        manual.extend_from_slice(&block(&key, &nonce, 7)[..2]);
        assert_eq!(joined, manual);
    }
}
