//! HMAC-SHA-256 (RFC 2104), validated against the RFC 4231 test vectors.

use crate::sha256::{digest, Sha256, BLOCK_LEN, DIGEST_LEN};

/// Computes `HMAC-SHA-256(key, message)`.
///
/// Keys longer than the SHA-256 block size are hashed first, per RFC 2104.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; DIGEST_LEN] {
    let mut key_block = [0u8; BLOCK_LEN];
    if key.len() > BLOCK_LEN {
        key_block[..DIGEST_LEN].copy_from_slice(&digest(key));
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut inner = Sha256::new();
    let ipad: Vec<u8> = key_block.iter().map(|b| b ^ 0x36).collect();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();

    let mut outer = Sha256::new();
    let opad: Vec<u8> = key_block.iter().map(|b| b ^ 0x5c).collect();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Constant-time equality for MAC verification: the comparison time does
/// not depend on where the first mismatching byte is.
pub fn verify_mac(expected: &[u8], actual: &[u8]) -> bool {
    if expected.len() != actual.len() {
        return false;
    }
    let mut acc = 0u8;
    for (a, b) in expected.iter().zip(actual) {
        acc |= a ^ b;
    }
    acc == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let mac = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let mac = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let mac = hmac_sha256(&key, &data);
        assert_eq!(
            hex(&mac),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_4() {
        let key: Vec<u8> = (1u8..=25).collect();
        let data = [0xcdu8; 50];
        let mac = hmac_sha256(&key, &data);
        assert_eq!(
            hex(&mac),
            "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaau8; 131];
        let mac = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn rfc4231_case_7_long_key_and_data() {
        let key = [0xaau8; 131];
        let msg = b"This is a test using a larger than block-size key and a larger than \
                    block-size data. The key needs to be hashed before being used by the \
                    HMAC algorithm.";
        let mac = hmac_sha256(&key, msg);
        assert_eq!(
            hex(&mac),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2"
        );
    }

    #[test]
    fn verify_mac_accepts_equal_rejects_unequal() {
        let a = hmac_sha256(b"k", b"m");
        let mut b = a;
        assert!(verify_mac(&a, &b));
        b[31] ^= 1;
        assert!(!verify_mac(&a, &b));
        assert!(!verify_mac(&a, &a[..16]));
    }
}
