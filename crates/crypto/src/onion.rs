//! Layered onion cells for mix-style rerouting.
//!
//! A rerouting path `x1 → x2 → … → xl → R` is realized as `l` nested
//! encryption layers. Each node peels one layer with keys derived from its
//! master key and the layer nonce, learns only its successor, and forwards
//! a cell that is bitwise unlinkable to the one it received. All cells on
//! the wire have the same fixed size (the store-and-forward *mix* property
//! from the paper's Section 2): the meaningful prefix shrinks by a constant
//! per hop and is hidden by random tail junk supplied at framing time.
//!
//! ## Layer format
//!
//! ```text
//! wire cell  := nonce(12) ‖ ciphertext              (fixed CELL size)
//! plaintext  := mac(16) ‖ next(2) ‖ len(2) ‖ content(len)   [+ junk]
//! content    := inner wire bytes        when next is a node id
//!             | payload                 when next = DELIVER
//! mac        := HMAC-SHA-256(mac_key, next ‖ len ‖ content)[..16]
//! ```

use crate::chacha20;
use crate::error::{Error, Result};
use crate::hmac::{hmac_sha256, verify_mac};
use crate::keys::{KeyStore, MasterKey};

/// Per-hop header bytes inside a layer: truncated MAC, next-hop id, length.
pub const HEADER_LEN: usize = 16 + 2 + 2;
/// Nonce bytes prepended to every layer.
pub const NONCE_LEN: usize = 12;
/// Total overhead added by one onion layer.
pub const LAYER_OVERHEAD: usize = HEADER_LEN + NONCE_LEN;
/// `next`-field marker meaning "deliver the payload to the receiver".
pub const DELIVER: u16 = u16::MAX;

/// Result of peeling one onion layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Peeled {
    /// Forward the contained bytes (to be re-framed to the wire cell size)
    /// to the given next node.
    Forward {
        /// Member node that should receive the inner cell.
        next: u16,
        /// Meaningful inner-cell bytes (without tail junk).
        content: Vec<u8>,
    },
    /// Final hop: deliver the decrypted payload to the receiver.
    Deliver {
        /// The sender's original message.
        payload: Vec<u8>,
    },
}

/// Builds the meaningful bytes of the outermost wire cell for `payload`
/// routed along `path` (member node ids), one nonce per hop.
///
/// The returned bytes must be framed with [`frame`] before transmission.
///
/// # Errors
///
/// * [`Error::PathTooLong`] if a node id collides with the [`DELIVER`]
///   marker or the nonce count mismatches the path;
/// * the caller should check the framed size against its cell size —
///   [`frame`] reports overflow.
pub fn build(
    keys: &KeyStore,
    path: &[u16],
    payload: &[u8],
    nonces: &[[u8; NONCE_LEN]],
) -> Result<Vec<u8>> {
    if path.is_empty() {
        return Err(Error::PathTooLong(
            "onion paths need at least one hop".into(),
        ));
    }
    if nonces.len() != path.len() {
        return Err(Error::PathTooLong(format!(
            "need one nonce per hop: {} hops, {} nonces",
            path.len(),
            nonces.len()
        )));
    }
    if path.contains(&DELIVER) {
        return Err(Error::PathTooLong(format!(
            "node id {DELIVER} collides with the DELIVER marker"
        )));
    }

    // innermost first: the last hop delivers the payload
    let mut content = payload.to_vec();
    let mut next = DELIVER;
    for (&hop, nonce) in path.iter().zip(nonces.iter()).rev() {
        let master = keys.key(hop as usize);
        let wire = seal(&master, nonce, next, &content)?;
        content = wire;
        next = hop;
    }
    Ok(content)
}

/// Seals one onion layer: the exact inverse of [`peel`].
///
/// [`build`] composes this over a pre-shared [`KeyStore`]; callers that
/// derive per-hop keys some other way (e.g. the X25519 flow in
/// [`crate::handshake`], where each layer key comes from an ephemeral
/// exchange rather than a directory of master keys) can compose it
/// themselves, innermost layer first.
///
/// # Errors
///
/// Returns [`Error::PathTooLong`] when `content` exceeds the 16-bit
/// length field.
pub fn seal(
    master: &MasterKey,
    nonce: &[u8; NONCE_LEN],
    next: u16,
    content: &[u8],
) -> Result<Vec<u8>> {
    if content.len() > u16::MAX as usize {
        return Err(Error::PathTooLong(
            "layer content exceeds 65535 bytes".into(),
        ));
    }
    let (enc_key, mac_key) = master.layer_keys(nonce);
    let mut plaintext = Vec::with_capacity(HEADER_LEN + content.len());
    // mac placeholder
    plaintext.extend_from_slice(&[0u8; 16]);
    plaintext.extend_from_slice(&next.to_be_bytes());
    plaintext.extend_from_slice(&(content.len() as u16).to_be_bytes());
    plaintext.extend_from_slice(content);
    let mac = hmac_sha256(&mac_key, &plaintext[16..]);
    plaintext[..16].copy_from_slice(&mac[..16]);
    chacha20::xor_stream(&enc_key, nonce, 1, &mut plaintext);
    let mut wire = Vec::with_capacity(NONCE_LEN + plaintext.len());
    wire.extend_from_slice(nonce);
    wire.extend_from_slice(&plaintext);
    Ok(wire)
}

/// Peels one layer of `cell` with the node's master key.
///
/// `cell` may include tail junk beyond the meaningful bytes (the normal
/// case on the wire); the embedded length field delimits the real content
/// and the MAC authenticates exactly that region.
///
/// # Errors
///
/// * [`Error::Malformed`] if the cell is shorter than one layer or the
///   length field overruns the cell;
/// * [`Error::BadMac`] if authentication fails (wrong node, corrupted
///   cell, or forged traffic).
pub fn peel(master: &MasterKey, cell: &[u8]) -> Result<Peeled> {
    if cell.len() < LAYER_OVERHEAD {
        return Err(Error::Malformed(format!(
            "cell of {} bytes is shorter than one layer ({LAYER_OVERHEAD})",
            cell.len()
        )));
    }
    let nonce: [u8; NONCE_LEN] = cell[..NONCE_LEN].try_into().expect("length checked");
    let (enc_key, mac_key) = master.layer_keys(&nonce);
    let mut body = cell[NONCE_LEN..].to_vec();
    chacha20::xor_stream(&enc_key, &nonce, 1, &mut body);

    let next = u16::from_be_bytes([body[16], body[17]]);
    let len = u16::from_be_bytes([body[18], body[19]]) as usize;
    if HEADER_LEN + len > body.len() {
        // An overrunning length field means the cell was not sealed for
        // this key (or was corrupted) — indistinguishable from a MAC
        // failure, and reported as one to avoid oracle behavior.
        return Err(Error::BadMac);
    }
    let mac = hmac_sha256(&mac_key, &body[16..HEADER_LEN + len]);
    if !verify_mac(&mac[..16], &body[..16]) {
        return Err(Error::BadMac);
    }
    let content = body[HEADER_LEN..HEADER_LEN + len].to_vec();
    Ok(if next == DELIVER {
        Peeled::Deliver { payload: content }
    } else {
        Peeled::Forward { next, content }
    })
}

/// Frames meaningful cell bytes to the fixed wire size, filling the tail
/// with junk bytes from `junk` (use a CSPRNG-backed closure in production;
/// tests may use a counter).
///
/// # Errors
///
/// Returns [`Error::PathTooLong`] when the content does not fit the cell.
pub fn frame(content: &[u8], cell_size: usize, junk: &mut dyn FnMut() -> u8) -> Result<Vec<u8>> {
    if content.len() > cell_size {
        return Err(Error::PathTooLong(format!(
            "content of {} bytes exceeds the {cell_size}-byte cell",
            content.len()
        )));
    }
    let mut cell = Vec::with_capacity(cell_size);
    cell.extend_from_slice(content);
    cell.resize_with(cell_size, junk);
    Ok(cell)
}

/// Size in bytes of the meaningful prefix of the outermost cell for a
/// payload of `payload_len` routed over `hops` hops.
pub fn wire_len(hops: usize, payload_len: usize) -> usize {
    payload_len + hops * LAYER_OVERHEAD
}

/// Largest payload that fits a `cell_size` cell across `hops` hops.
pub fn max_payload(cell_size: usize, hops: usize) -> Option<usize> {
    cell_size.checked_sub(hops * LAYER_OVERHEAD)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keystore() -> KeyStore {
        KeyStore::from_seed(b"onion-tests", 16)
    }

    fn nonces(k: usize) -> Vec<[u8; NONCE_LEN]> {
        (0..k)
            .map(|i| {
                let mut n = [0u8; NONCE_LEN];
                n[0] = i as u8 + 1;
                n[5] = 0xA5;
                n
            })
            .collect()
    }

    /// Simulates the full relay pipeline and returns the delivered payload.
    fn relay(keys: &KeyStore, path: &[u16], wire: Vec<u8>, cell_size: usize) -> Vec<u8> {
        let mut junk_counter = 0u8;
        let mut junk = move || {
            junk_counter = junk_counter.wrapping_add(37);
            junk_counter
        };
        let mut cell = frame(&wire, cell_size, &mut junk).unwrap();
        for (i, &hop) in path.iter().enumerate() {
            match peel(&keys.key(hop as usize), &cell).unwrap() {
                Peeled::Forward { next, content } => {
                    assert_eq!(next, path[i + 1], "hop {i} forwards to the wrong node");
                    cell = frame(&content, cell_size, &mut junk).unwrap();
                }
                Peeled::Deliver { payload } => {
                    assert_eq!(i, path.len() - 1, "delivered early at hop {i}");
                    return payload;
                }
            }
        }
        panic!("message never delivered");
    }

    #[test]
    fn single_hop_roundtrip() {
        let keys = keystore();
        let wire = build(&keys, &[3], b"hello receiver", &nonces(1)).unwrap();
        let got = relay(&keys, &[3], wire, 512);
        assert_eq!(got, b"hello receiver");
    }

    #[test]
    fn five_hop_roundtrip_onion_routing_i_style() {
        let keys = keystore();
        let path = [2u16, 7, 1, 9, 4];
        let payload = b"GET / HTTP/1.0";
        let wire = build(&keys, &path, payload, &nonces(5)).unwrap();
        assert_eq!(wire.len(), wire_len(5, payload.len()));
        let got = relay(&keys, &path, wire, 512);
        assert_eq!(got, payload);
    }

    #[test]
    fn cyclic_path_with_repeated_node_works() {
        // Crowds-style paths may revisit a node; distinct per-layer nonces
        // keep the keystreams independent.
        let keys = keystore();
        let path = [2u16, 5, 2, 5, 2];
        let wire = build(&keys, &path, b"loop", &nonces(5)).unwrap();
        let got = relay(&keys, &path, wire, 512);
        assert_eq!(got, b"loop");
    }

    #[test]
    fn wrong_node_key_fails_mac() {
        let keys = keystore();
        let wire = build(&keys, &[3, 4], b"secret", &nonces(2)).unwrap();
        let mut junk = || 0u8;
        let cell = frame(&wire, 512, &mut junk).unwrap();
        // node 5 intercepts a cell addressed to node 3
        assert_eq!(peel(&keys.key(5), &cell), Err(Error::BadMac));
    }

    #[test]
    fn tampering_detected() {
        let keys = keystore();
        let wire = build(&keys, &[3], b"secret", &nonces(1)).unwrap();
        let mut junk = || 0u8;
        let mut cell = frame(&wire, 512, &mut junk).unwrap();
        cell[20] ^= 0x01;
        assert_eq!(peel(&keys.key(3), &cell), Err(Error::BadMac));
    }

    #[test]
    fn junk_tail_does_not_affect_peeling() {
        let keys = keystore();
        let wire = build(&keys, &[6], b"payload", &nonces(1)).unwrap();
        let mut a = frame(&wire, 512, &mut || 0xAA).unwrap();
        let b = frame(&wire, 512, &mut || 0x55).unwrap();
        assert_eq!(peel(&keys.key(6), &a), peel(&keys.key(6), &b));
        // and the two framings differ on the wire (junk hides the length)
        assert_ne!(a, b);
        a.truncate(wire.len());
    }

    #[test]
    fn cells_are_unlinkable_across_a_hop() {
        // an outside observer comparing the cell entering node 3 with the
        // cell leaving it sees no shared bytes beyond chance
        let keys = keystore();
        let path = [3u16, 8];
        let wire = build(&keys, &path, &[0u8; 64], &nonces(2)).unwrap();
        // distinct junk streams, as a CSPRNG would produce
        let mut j1 = 1u8;
        let incoming = frame(&wire, 512, &mut || {
            j1 = j1.wrapping_mul(31).wrapping_add(7);
            j1
        })
        .unwrap();
        let Peeled::Forward { content, .. } = peel(&keys.key(3), &incoming).unwrap() else {
            panic!("expected forward")
        };
        let mut j2 = 101u8;
        let outgoing = frame(&content, 512, &mut || {
            j2 = j2.wrapping_mul(29).wrapping_add(13);
            j2
        })
        .unwrap();
        let matching = incoming
            .iter()
            .zip(&outgoing)
            .filter(|(a, b)| a == b)
            .count();
        // 512 positions, ~2 expected matches by chance; allow generous slack
        assert!(matching < 24, "cells share {matching} positions");
    }

    #[test]
    fn deliver_marker_collision_rejected() {
        let keys = keystore();
        assert!(build(&keys, &[DELIVER], b"x", &nonces(1)).is_err());
        assert!(build(&keys, &[], b"x", &[]).is_err());
        assert!(build(&keys, &[1, 2], b"x", &nonces(1)).is_err());
    }

    #[test]
    fn frame_rejects_oversized_content() {
        assert!(frame(&[0u8; 600], 512, &mut || 0).is_err());
    }

    #[test]
    fn truncated_cell_rejected() {
        let keys = keystore();
        assert!(matches!(
            peel(&keys.key(0), &[0u8; 10]),
            Err(Error::Malformed(_))
        ));
    }

    #[test]
    fn max_payload_accounting() {
        assert_eq!(max_payload(512, 5), Some(512 - 5 * LAYER_OVERHEAD));
        assert_eq!(max_payload(64, 3), None);
        // a payload at exactly the bound fits
        let keys = keystore();
        let hops = [1u16, 2, 3];
        let payload = vec![7u8; max_payload(512, 3).unwrap()];
        let wire = build(&keys, &hops, &payload, &nonces(3)).unwrap();
        assert_eq!(wire.len(), 512);
        let got = relay(&keys, &hops, wire, 512);
        assert_eq!(got, payload);
    }
}
