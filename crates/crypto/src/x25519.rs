//! X25519 Diffie–Hellman (RFC 7748), implemented from scratch.
//!
//! The deployed systems the paper surveys (Onion Routing, Freedom) use
//! public-key cryptography to establish per-hop keys; the offline build
//! environment has no crypto crates, so this module provides Curve25519
//! scalar multiplication over GF(2²⁵⁵ − 19) with 51-bit limbs and the
//! constant-structure Montgomery ladder, validated against the RFC 7748
//! test vectors (including the iterated vector).
//!
//! [`crate::handshake`] builds ephemeral→static key agreement for onion
//! layer keys on top of this primitive.

#![allow(clippy::needless_range_loop)] // fixed-width limb arithmetic

/// A field element of GF(2^255 - 19) in radix-2^51 representation.
#[derive(Clone, Copy, Debug)]
struct Fe([u64; 5]);

const MASK51: u64 = (1u64 << 51) - 1;

impl Fe {
    const ZERO: Fe = Fe([0; 5]);
    const ONE: Fe = Fe([1, 0, 0, 0, 0]);

    fn from_bytes(bytes: &[u8; 32]) -> Fe {
        let load = |b: &[u8]| -> u64 {
            let mut x = [0u8; 8];
            x[..b.len()].copy_from_slice(b);
            u64::from_le_bytes(x)
        };
        let mut h = [0u64; 5];
        h[0] = load(&bytes[0..8]) & MASK51;
        h[1] = (load(&bytes[6..14]) >> 3) & MASK51;
        h[2] = (load(&bytes[12..20]) >> 6) & MASK51;
        h[3] = (load(&bytes[19..27]) >> 1) & MASK51;
        h[4] = (load(&bytes[24..32]) >> 12) & MASK51;
        Fe(h)
    }

    fn to_bytes(mut self) -> [u8; 32] {
        self = self.reduce();
        // final canonical reduction: subtract p if >= p
        let mut h = self.0;
        // compute h + 19, see if it carries past 2^255
        let mut q = (h[0] + 19) >> 51;
        q = (h[1] + q) >> 51;
        q = (h[2] + q) >> 51;
        q = (h[3] + q) >> 51;
        q = (h[4] + q) >> 51;
        h[0] += 19 * q;
        let mut carry = h[0] >> 51;
        h[0] &= MASK51;
        for i in 1..5 {
            h[i] += carry;
            carry = h[i] >> 51;
            h[i] &= MASK51;
        }
        // now h is canonical (the overflow bit was discarded mod 2^255)
        let mut out = [0u8; 32];
        let w0 = h[0] | (h[1] << 51);
        let w1 = (h[1] >> 13) | (h[2] << 38);
        let w2 = (h[2] >> 26) | (h[3] << 25);
        let w3 = (h[3] >> 39) | (h[4] << 12);
        out[0..8].copy_from_slice(&w0.to_le_bytes());
        out[8..16].copy_from_slice(&w1.to_le_bytes());
        out[16..24].copy_from_slice(&w2.to_le_bytes());
        out[24..32].copy_from_slice(&w3.to_le_bytes());
        out
    }

    /// Weak reduction: brings limbs below 2^52.
    fn reduce(self) -> Fe {
        let mut h = self.0;
        let mut carry = h[4] >> 51;
        h[4] &= MASK51;
        h[0] += 19 * carry;
        for i in 0..4 {
            carry = h[i] >> 51;
            h[i] &= MASK51;
            h[i + 1] += carry;
        }
        carry = h[4] >> 51;
        h[4] &= MASK51;
        h[0] += 19 * carry;
        Fe(h)
    }

    fn add(self, rhs: Fe) -> Fe {
        let mut h = [0u64; 5];
        for i in 0..5 {
            h[i] = self.0[i] + rhs.0[i];
        }
        Fe(h).reduce()
    }

    fn sub(self, rhs: Fe) -> Fe {
        // add 2p (limbs [2^52-38, 2^52-2, ...]) to avoid underflow; valid
        // because weakly reduced operands stay below 2^52 per limb
        let mut h = [0u64; 5];
        h[0] = self.0[0] + 0xFFFFFFFFFFFDA - rhs.0[0];
        h[1] = self.0[1] + 0xFFFFFFFFFFFFE - rhs.0[1];
        h[2] = self.0[2] + 0xFFFFFFFFFFFFE - rhs.0[2];
        h[3] = self.0[3] + 0xFFFFFFFFFFFFE - rhs.0[3];
        h[4] = self.0[4] + 0xFFFFFFFFFFFFE - rhs.0[4];
        Fe(h).reduce()
    }

    fn mul(self, rhs: Fe) -> Fe {
        let a = self.0;
        let b = rhs.0;
        let a1_19 = a[1] * 19;
        let a2_19 = a[2] * 19;
        let a3_19 = a[3] * 19;
        let a4_19 = a[4] * 19;
        let m = |x: u64, y: u64| x as u128 * y as u128;
        let mut t = [0u128; 5];
        t[0] = m(a[0], b[0]) + m(a4_19, b[1]) + m(a3_19, b[2]) + m(a2_19, b[3]) + m(a1_19, b[4]);
        t[1] = m(a[0], b[1]) + m(a[1], b[0]) + m(a4_19, b[2]) + m(a3_19, b[3]) + m(a2_19, b[4]);
        t[2] = m(a[0], b[2]) + m(a[1], b[1]) + m(a[2], b[0]) + m(a4_19, b[3]) + m(a3_19, b[4]);
        t[3] = m(a[0], b[3]) + m(a[1], b[2]) + m(a[2], b[1]) + m(a[3], b[0]) + m(a4_19, b[4]);
        t[4] = m(a[0], b[4]) + m(a[1], b[3]) + m(a[2], b[2]) + m(a[3], b[1]) + m(a[4], b[0]);

        let mut h = [0u64; 5];
        let mut carry: u128 = 0;
        for i in 0..5 {
            let v = t[i] + carry;
            h[i] = (v as u64) & MASK51;
            carry = v >> 51;
        }
        h[0] += (carry as u64) * 19;
        let c = h[0] >> 51;
        h[0] &= MASK51;
        h[1] += c;
        Fe(h)
    }

    fn square(self) -> Fe {
        self.mul(self)
    }

    fn mul_small(self, k: u64) -> Fe {
        let mut t = [0u128; 5];
        for i in 0..5 {
            t[i] = self.0[i] as u128 * k as u128;
        }
        let mut h = [0u64; 5];
        let mut carry: u128 = 0;
        for i in 0..5 {
            let v = t[i] + carry;
            h[i] = (v as u64) & MASK51;
            carry = v >> 51;
        }
        h[0] += (carry as u64) * 19;
        Fe(h).reduce()
    }

    /// Inversion via Fermat: x^(p-2).
    fn invert(self) -> Fe {
        // addition chain from the curve25519 reference implementation
        let z = self;
        let z2 = z.square(); // 2
        let z9 = z2.square().square().mul(z); // 9
        let z11 = z9.mul(z2); // 11
        let z2_5_0 = z11.square().mul(z9); // 2^5 - 2^0 = 31
        let mut t = z2_5_0;
        for _ in 0..5 {
            t = t.square();
        }
        let z2_10_0 = t.mul(z2_5_0);
        t = z2_10_0;
        for _ in 0..10 {
            t = t.square();
        }
        let z2_20_0 = t.mul(z2_10_0);
        t = z2_20_0;
        for _ in 0..20 {
            t = t.square();
        }
        let z2_40_0 = t.mul(z2_20_0);
        t = z2_40_0;
        for _ in 0..10 {
            t = t.square();
        }
        let z2_50_0 = t.mul(z2_10_0);
        t = z2_50_0;
        for _ in 0..50 {
            t = t.square();
        }
        let z2_100_0 = t.mul(z2_50_0);
        t = z2_100_0;
        for _ in 0..100 {
            t = t.square();
        }
        let z2_200_0 = t.mul(z2_100_0);
        t = z2_200_0;
        for _ in 0..50 {
            t = t.square();
        }
        let z2_250_0 = t.mul(z2_50_0);
        t = z2_250_0;
        for _ in 0..5 {
            t = t.square();
        }
        t.mul(z11) // 2^255 - 21 = p - 2
    }

    /// Constant-structure conditional swap.
    fn cswap(a: &mut Fe, b: &mut Fe, swap: u64) {
        let mask = 0u64.wrapping_sub(swap);
        for i in 0..5 {
            let x = mask & (a.0[i] ^ b.0[i]);
            a.0[i] ^= x;
            b.0[i] ^= x;
        }
    }
}

/// Clamps a 32-byte scalar per RFC 7748.
fn clamp(scalar: &[u8; 32]) -> [u8; 32] {
    let mut s = *scalar;
    s[0] &= 248;
    s[31] &= 127;
    s[31] |= 64;
    s
}

/// X25519 scalar multiplication: `scalar · u` on Curve25519
/// (the `X25519(k, u)` function of RFC 7748 §5).
pub fn x25519(scalar: &[u8; 32], u: &[u8; 32]) -> [u8; 32] {
    let k = clamp(scalar);
    let mut u_bytes = *u;
    u_bytes[31] &= 127; // mask the high bit per RFC 7748
    let x1 = Fe::from_bytes(&u_bytes);

    let mut x2 = Fe::ONE;
    let mut z2 = Fe::ZERO;
    let mut x3 = x1;
    let mut z3 = Fe::ONE;
    let mut swap = 0u64;

    for t in (0..255).rev() {
        let k_t = ((k[t / 8] >> (t % 8)) & 1) as u64;
        swap ^= k_t;
        Fe::cswap(&mut x2, &mut x3, swap);
        Fe::cswap(&mut z2, &mut z3, swap);
        swap = k_t;

        let a = x2.add(z2);
        let aa = a.square();
        let b = x2.sub(z2);
        let bb = b.square();
        let e = aa.sub(bb);
        let c = x3.add(z3);
        let d = x3.sub(z3);
        let da = d.mul(a);
        let cb = c.mul(b);
        x3 = da.add(cb).square();
        z3 = x1.mul(da.sub(cb).square());
        x2 = aa.mul(bb);
        z2 = e.mul(aa.add(e.mul_small(121665)));
    }
    Fe::cswap(&mut x2, &mut x3, swap);
    Fe::cswap(&mut z2, &mut z3, swap);
    x2.mul(z2.invert()).to_bytes()
}

/// The curve's base point `u = 9`.
pub const BASEPOINT: [u8; 32] = {
    let mut b = [0u8; 32];
    b[0] = 9;
    b
};

/// Derives the public key for a private scalar.
pub fn public_key(private: &[u8; 32]) -> [u8; 32] {
    x25519(private, &BASEPOINT)
}

/// Computes the shared secret between a private scalar and a peer's
/// public key.
pub fn shared_secret(private: &[u8; 32], peer_public: &[u8; 32]) -> [u8; 32] {
    x25519(private, peer_public)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex(s: &str) -> [u8; 32] {
        let v: Vec<u8> = (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect();
        v.try_into().unwrap()
    }

    fn hex(b: &[u8]) -> String {
        b.iter().map(|x| format!("{x:02x}")).collect()
    }

    #[test]
    fn rfc7748_vector_1() {
        let k = unhex("a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4");
        let u = unhex("e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c");
        assert_eq!(
            hex(&x25519(&k, &u)),
            "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552"
        );
    }

    #[test]
    fn rfc7748_vector_2() {
        let k = unhex("4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d");
        let u = unhex("e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493");
        assert_eq!(
            hex(&x25519(&k, &u)),
            "95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957"
        );
    }

    #[test]
    fn rfc7748_iterated_vector() {
        let mut k = unhex("0900000000000000000000000000000000000000000000000000000000000000");
        let mut u = k;
        // after 1 iteration
        let r = x25519(&k, &u);
        u = k;
        k = r;
        assert_eq!(
            hex(&k),
            "422c8e7a6227d7bca1350b3e2bb7279f7897b87bb6854b783c60e80311ae3079"
        );
        // after 1000 iterations
        for _ in 1..1000 {
            let r = x25519(&k, &u);
            u = k;
            k = r;
        }
        assert_eq!(
            hex(&k),
            "684cf59ba83309552800ef566f2f4d3c1c3887c49360e3875f2eb94d99532c51"
        );
    }

    #[test]
    fn rfc7748_diffie_hellman() {
        let alice_priv = unhex("77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a");
        let bob_priv = unhex("5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb");
        let alice_pub = public_key(&alice_priv);
        let bob_pub = public_key(&bob_priv);
        assert_eq!(
            hex(&alice_pub),
            "8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a"
        );
        assert_eq!(
            hex(&bob_pub),
            "de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f"
        );
        let s1 = shared_secret(&alice_priv, &bob_pub);
        let s2 = shared_secret(&bob_priv, &alice_pub);
        assert_eq!(s1, s2);
        assert_eq!(
            hex(&s1),
            "4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742"
        );
    }

    #[test]
    fn field_roundtrip() {
        // encode/decode stability on structured values
        for seed in 0u8..8 {
            let mut b = [0u8; 32];
            for (i, x) in b.iter_mut().enumerate() {
                *x = seed.wrapping_mul(31).wrapping_add(i as u8);
            }
            b[31] &= 0x7f;
            let fe = Fe::from_bytes(&b);
            let back = fe.to_bytes();
            let fe2 = Fe::from_bytes(&back);
            assert_eq!(fe2.to_bytes(), back);
        }
    }

    #[test]
    fn clamping_is_applied() {
        // two scalars differing only in clamped bits give the same output
        let mut a = [0x42u8; 32];
        let mut b = a;
        a[0] |= 7;
        b[0] &= !7;
        b[31] |= 128;
        assert_eq!(public_key(&a), public_key(&b));
    }
}
