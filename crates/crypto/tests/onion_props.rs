//! Property tests (vendored proptest) for the onion framing invariants
//! the relay network depends on: peel∘wrap identity, constant wire-cell
//! size at every hop, and MAC tamper rejection.

use anonroute_crypto::keys::KeyStore;
use anonroute_crypto::onion::{
    build, frame, max_payload, peel, wire_len, Peeled, LAYER_OVERHEAD, NONCE_LEN,
};
use anonroute_crypto::Error;
use proptest::prelude::*;

const CELL: usize = 2048;
const NODES: usize = 24;

fn keystore() -> KeyStore {
    KeyStore::from_seed(b"onion-props", NODES)
}

/// Derives one distinct nonce per hop from a seed byte.
fn nonces(hops: usize, seed: u8) -> Vec<[u8; NONCE_LEN]> {
    (0..hops)
        .map(|i| {
            let mut n = [0u8; NONCE_LEN];
            n[0] = i as u8;
            n[1] = seed;
            n[7] = 0x5C;
            n
        })
        .collect()
}

/// A deterministic junk stream seeded per test case.
fn junk_stream(seed: u8) -> impl FnMut() -> u8 {
    let mut state = seed;
    move || {
        state = state.wrapping_mul(167).wrapping_add(13);
        state
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    // peel∘wrap identity: for any path (repeats allowed — cyclic routes)
    // and any payload that fits, relaying hop by hop recovers exactly the
    // original payload at exactly the last hop.
    #[test]
    fn peel_wrap_identity_over_random_paths(
        path in proptest::collection::vec(0u16..NODES as u16, 1..10),
        payload in proptest::collection::vec(any::<u8>(), 0..512),
        nonce_seed in any::<u8>(),
        junk_seed in any::<u8>(),
    ) {
        let keys = keystore();
        let wire = build(&keys, &path, &payload, &nonces(path.len(), nonce_seed)).unwrap();
        prop_assert_eq!(wire.len(), wire_len(path.len(), payload.len()));
        let mut junk = junk_stream(junk_seed);
        let mut cell = frame(&wire, CELL, &mut junk).unwrap();
        for (i, &hop) in path.iter().enumerate() {
            match peel(&keys.key(hop as usize), &cell).unwrap() {
                Peeled::Forward { next, content } => {
                    prop_assert!(i + 1 < path.len(), "forwarded past the last hop");
                    prop_assert_eq!(next, path[i + 1]);
                    cell = frame(&content, CELL, &mut junk).unwrap();
                }
                Peeled::Deliver { payload: got } => {
                    prop_assert_eq!(i, path.len() - 1, "delivered early at hop {}", i);
                    prop_assert_eq!(&got, &payload);
                }
            }
        }
    }

    // The mix property: the framed cell observed on the wire has the same
    // fixed size at every hop, and the meaningful prefix shrinks by
    // exactly LAYER_OVERHEAD per peel.
    #[test]
    fn wire_cells_are_constant_size_at_every_hop(
        path in proptest::collection::vec(0u16..NODES as u16, 1..12),
        payload_len in 0usize..256,
        junk_seed in any::<u8>(),
    ) {
        let keys = keystore();
        let payload = vec![0xA7u8; payload_len];
        let wire = build(&keys, &path, &payload, &nonces(path.len(), junk_seed)).unwrap();
        let mut junk = junk_stream(junk_seed);
        let mut cell = frame(&wire, CELL, &mut junk).unwrap();
        let mut meaningful = wire.len();
        for (i, &hop) in path.iter().enumerate() {
            prop_assert_eq!(cell.len(), CELL, "cell size changed at hop {}", i);
            prop_assert_eq!(meaningful, wire_len(path.len() - i, payload.len()));
            match peel(&keys.key(hop as usize), &cell).unwrap() {
                Peeled::Forward { content, .. } => {
                    prop_assert_eq!(content.len(), meaningful - LAYER_OVERHEAD);
                    meaningful = content.len();
                    cell = frame(&content, CELL, &mut junk).unwrap();
                }
                Peeled::Deliver { payload: got } => {
                    prop_assert_eq!(got.len(), payload.len());
                }
            }
        }
    }

    // Flipping any single bit of the meaningful region is rejected by the
    // first hop's MAC (junk-tail flips beyond it must be ignored).
    #[test]
    fn single_bit_tamper_is_rejected(
        path in proptest::collection::vec(0u16..NODES as u16, 1..6),
        payload in proptest::collection::vec(any::<u8>(), 1..128),
        flip_pos in any::<usize>(),
        flip_bit in 0u8..8,
        junk_seed in any::<u8>(),
    ) {
        let keys = keystore();
        let wire = build(&keys, &path, &payload, &nonces(path.len(), junk_seed)).unwrap();
        let mut junk = junk_stream(junk_seed);
        let mut cell = frame(&wire, CELL, &mut junk).unwrap();
        let first = keys.key(path[0] as usize);

        let pos = flip_pos % wire.len();
        cell[pos] ^= 1 << flip_bit;
        if pos < NONCE_LEN {
            // nonce flips change the derived keys: decryption garbles the
            // header, so either the MAC or the length sanity check fires
            prop_assert!(peel(&first, &cell).is_err(), "nonce tamper accepted");
        } else {
            prop_assert_eq!(peel(&first, &cell), Err(Error::BadMac));
        }

        // undo, then flip junk instead: peeling must succeed untouched
        cell[pos] ^= 1 << flip_bit;
        if wire.len() < CELL {
            let tail = wire.len() + flip_pos % (CELL - wire.len());
            cell[tail] ^= 1 << flip_bit;
            prop_assert!(peel(&first, &cell).is_ok(), "junk tamper rejected");
        }
    }

    // Payloads at exactly the capacity bound frame to a full cell; one
    // byte more is rejected at framing time.
    #[test]
    fn capacity_bound_is_exact(
        hops in 1usize..10,
        junk_seed in any::<u8>(),
    ) {
        let keys = keystore();
        let path: Vec<u16> = (0..hops as u16).collect();
        let cap = max_payload(CELL, hops).unwrap();
        let wire = build(&keys, &path, &vec![3u8; cap], &nonces(hops, junk_seed)).unwrap();
        prop_assert_eq!(wire.len(), CELL);
        let mut junk = junk_stream(junk_seed);
        prop_assert!(frame(&wire, CELL, &mut junk).is_ok());
        let over = build(&keys, &path, &vec![3u8; cap + 1], &nonces(hops, junk_seed)).unwrap();
        prop_assert!(frame(&over, CELL, &mut junk).is_err());
    }
}
