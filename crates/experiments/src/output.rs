//! Table printing and CSV output for experiment results.

use std::fs;
use std::io::Write;
use std::path::Path;

/// One plotted curve: a name and `(x, y)` points.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label, e.g. `"U(4,4+D)"`.
    pub name: String,
    /// Points in x order. `None` marks x values where the series is not
    /// defined (e.g. infeasible parameter combinations).
    pub points: Vec<(f64, Option<f64>)>,
}

impl Series {
    /// Builds a series from defined points only.
    pub fn new(name: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            name: name.into(),
            points: points.into_iter().map(|(x, y)| (x, Some(y))).collect(),
        }
    }

    /// Largest y value and its x, ignoring gaps.
    pub fn argmax(&self) -> Option<(f64, f64)> {
        self.points
            .iter()
            .filter_map(|&(x, y)| y.map(|y| (x, y)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite values"))
    }
}

/// Prints an aligned table of one x column plus one column per series.
pub fn print_table(title: &str, x_label: &str, series: &[Series]) {
    println!("\n== {title} ==");
    print!("{x_label:>10}");
    for s in series {
        print!("  {:>16}", truncate(&s.name, 16));
    }
    println!();
    let rows = series.iter().map(|s| s.points.len()).max().unwrap_or(0);
    for i in 0..rows {
        let x = series
            .iter()
            .find_map(|s| s.points.get(i).map(|p| p.0))
            .unwrap_or(f64::NAN);
        print!("{x:>10.2}");
        for s in series {
            match s.points.get(i).and_then(|p| p.1) {
                Some(y) => print!("  {y:>16.6}"),
                None => print!("  {:>16}", "-"),
            }
        }
        println!();
    }
}

fn truncate(s: &str, max: usize) -> &str {
    if s.len() <= max {
        s
    } else {
        &s[..max]
    }
}

/// Writes the series to `path` as CSV (x column plus one column per
/// series; blank cells for gaps).
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_csv(path: &Path, x_label: &str, series: &[Series]) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)?;
    }
    let mut f = fs::File::create(path)?;
    write!(f, "{x_label}")?;
    for s in series {
        write!(f, ",{}", s.name.replace(',', ";"))?;
    }
    writeln!(f)?;
    let rows = series.iter().map(|s| s.points.len()).max().unwrap_or(0);
    for i in 0..rows {
        let x = series
            .iter()
            .find_map(|s| s.points.get(i).map(|p| p.0))
            .unwrap_or(f64::NAN);
        write!(f, "{x}")?;
        for s in series {
            match s.points.get(i).and_then(|p| p.1) {
                Some(y) => write!(f, ",{y}")?,
                None => write!(f, ",")?,
            }
        }
        writeln!(f)?;
    }
    Ok(())
}

/// Default output directory for experiment CSVs: `$ANONROUTE_RESULTS`,
/// falling back to `results/`.
pub fn results_dir() -> std::path::PathBuf {
    std::env::var_os("ANONROUTE_RESULTS")
        .map(Into::into)
        .unwrap_or_else(|| "results".into())
}

/// [`results_dir`], created if absent — binaries call this up front so a
/// fresh checkout (or a custom `ANONROUTE_RESULTS`) never fails on a
/// missing directory.
///
/// # Errors
///
/// Propagates I/O failures creating the directory.
pub fn ensure_results_dir() -> std::io::Result<std::path::PathBuf> {
    let dir = results_dir();
    fs::create_dir_all(&dir)?;
    Ok(dir)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_argmax() {
        let s = Series::new("t", vec![(1.0, 2.0), (2.0, 5.0), (3.0, 4.0)]);
        assert_eq!(s.argmax(), Some((2.0, 5.0)));
    }

    #[test]
    fn csv_roundtrip_structure() {
        let dir = std::env::temp_dir().join("anonroute-test-csv");
        let path = dir.join("t.csv");
        let series = vec![
            Series::new("a", vec![(0.0, 1.0), (1.0, 2.0)]),
            Series {
                name: "b".into(),
                points: vec![(0.0, Some(3.0)), (1.0, None)],
            },
        ];
        write_csv(&path, "x", &series).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "x,a,b");
        assert_eq!(lines[1], "0,1,3");
        assert_eq!(lines[2], "1,2,");
        std::fs::remove_dir_all(&dir).ok();
    }
}
