//! Regenerates Figure 3: anonymity degree vs fixed path length
//! (`n = 100`, `c = 1`).

use anonroute_experiments::figures::{fig3a, fig3b};
use anonroute_experiments::output::{ensure_results_dir, print_table, write_csv};

fn main() {
    let a = fig3a();
    let b = fig3b();
    print_table(
        "Figure 3(a): H* vs fixed path length l (n=100, c=1)",
        "l",
        std::slice::from_ref(&a),
    );
    print_table(
        "Figure 3(b): short-path zoom",
        "l",
        std::slice::from_ref(&b),
    );

    if let Some((peak_l, peak_h)) = a.argmax() {
        println!("\npeak: H* = {peak_h:.6} at l = {peak_l}");
        println!(
            "short-path anchors: F(1)=F(2)={:.6}, F(3)={:.6}, F(4)={:.6}",
            a.points[1].1.unwrap(),
            a.points[3].1.unwrap(),
            a.points[4].1.unwrap()
        );
    }
    let dir = ensure_results_dir().expect("create results dir");
    write_csv(&dir.join("fig3a.csv"), "l", &[a]).expect("write fig3a.csv");
    write_csv(&dir.join("fig3b.csv"), "l", &[b]).expect("write fig3b.csv");
    println!("\nCSV written to {}", dir.display());
}
