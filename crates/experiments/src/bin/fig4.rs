//! Regenerates Figure 4: anonymity degree vs the spread of uniform
//! strategies `U(a, a+Δ)` at fixed lower bounds (`n = 100`, `c = 1`).

use anonroute_experiments::figures::fig4;
use anonroute_experiments::output::{ensure_results_dir, print_table, write_csv};

fn main() {
    let dir = ensure_results_dir().expect("create results dir");
    for (i, (title, series)) in fig4().into_iter().enumerate() {
        print_table(&title, "D", &series);
        let file = dir.join(format!("fig4{}.csv", char::from(b'a' + i as u8)));
        write_csv(&file, "D", &series).expect("write csv");
    }
    println!("\nCSV written to {}", dir.display());
}
