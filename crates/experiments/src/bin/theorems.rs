//! Validates the paper's Theorems 1–3 closed forms against the general
//! engine.

use anonroute_experiments::validation::theorem_table;

fn main() {
    println!("== Theorems 1-3: closed forms vs general engine (n=100, c=1) ==");
    println!(
        "{:<28} {:>14} {:>14} {:>12}",
        "case", "closed form", "engine", "abs error"
    );
    let mut worst = 0.0f64;
    for row in theorem_table() {
        println!(
            "{:<28} {:>14.9} {:>14.9} {:>12.3e}",
            row.case,
            row.closed_form,
            row.engine,
            row.error()
        );
        worst = worst.max(row.error());
    }
    println!("\nmax abs error: {worst:.3e}");
    assert!(worst < 1e-11, "closed forms diverged from the engine");
    println!("all theorems verified.");
}
