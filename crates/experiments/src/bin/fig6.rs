//! Regenerates Figure 6: the optimal path-length distribution vs the
//! fixed and uniform families (`n = 100`, `c = 1`).

use anonroute_core::optimize;
use anonroute_core::SystemModel;
use anonroute_experiments::figures::fig6;
use anonroute_experiments::output::{ensure_results_dir, print_table, write_csv};

fn main() {
    let lmax = 99;
    let series = fig6(2, 50, lmax);
    print_table(
        "Figure 6: optimization vs F(L) and U(2,2L-2) (n=100, c=1)",
        "L",
        &series,
    );

    // describe the optimal distribution's shape at a few means
    let model = SystemModel::new(100, 1).expect("valid");
    println!("\nOptimal distribution shapes:");
    for mean in [5usize, 10, 20, 40] {
        let out = optimize::maximize_with_mean(&model, lmax, mean as f64).expect("feasible");
        let pmf = out.dist.pmf();
        let support: Vec<(usize, f64)> = pmf
            .iter()
            .enumerate()
            .filter(|(_, &p)| p > 1e-6)
            .map(|(l, &p)| (l, p))
            .collect();
        let lo = support.first().map(|s| s.0).unwrap_or(0);
        let hi = support.last().map(|s| s.0).unwrap_or(0);
        println!(
            "  E[L]={mean:>3}: H*={:.6}, support {lo}..={hi} over {} lengths",
            out.h_star,
            support.len()
        );
    }
    let (delta_best, _) = optimize::best_uniform_with_mean(&model, lmax, 10).expect("feasible");
    println!("  best uniform spread at E[L]=10: delta = {delta_best}");

    let dir = ensure_results_dir().expect("create results dir");
    write_csv(&dir.join("fig6.csv"), "L", &series).expect("write csv");
    println!("\nCSV written to {}", dir.display());
}
