//! Runs the complete experiment suite: every figure, the theorem checks,
//! the survey, the validation, and the extensions. Writes all CSVs.

use anonroute_experiments::extensions::{compromise_sweep, cyclic_vs_simple};
use anonroute_experiments::figures::{fig3a, fig3b, fig4, fig5, fig6};
use anonroute_experiments::output::{ensure_results_dir, print_table, write_csv};
use anonroute_experiments::systems::survey_table;
use anonroute_experiments::validation::{theorem_table, validation_table};

fn main() {
    let dir = ensure_results_dir().expect("create results dir");

    // figures
    let f3a = fig3a();
    let f3b = fig3b();
    print_table("Figure 3(a)", "l", std::slice::from_ref(&f3a));
    write_csv(&dir.join("fig3a.csv"), "l", &[f3a]).expect("csv");
    write_csv(&dir.join("fig3b.csv"), "l", &[f3b]).expect("csv");
    for (i, (title, series)) in fig4().into_iter().enumerate() {
        print_table(&title, "D", &series);
        write_csv(
            &dir.join(format!("fig4{}.csv", char::from(b'a' + i as u8))),
            "D",
            &series,
        )
        .expect("csv");
    }
    for (i, (title, series)) in fig5().into_iter().enumerate() {
        print_table(&title, "L", &series);
        write_csv(
            &dir.join(format!("fig5{}.csv", char::from(b'a' + i as u8))),
            "L",
            &series,
        )
        .expect("csv");
    }
    let f6 = fig6(2, 50, 99);
    print_table("Figure 6", "L", &f6);
    write_csv(&dir.join("fig6.csv"), "L", &f6).expect("csv");

    // theorems
    println!("\n== Theorems ==");
    for row in theorem_table() {
        println!("{:<28} err={:.2e}", row.case, row.error());
    }

    // survey
    println!("\n== Survey ==");
    for row in survey_table() {
        println!("{:<20} H*={:.4}", row.name, row.report.h_star);
    }

    // validation
    println!("\n== Validation ==");
    for row in validation_table(2000, 2026) {
        println!(
            "{:<28} exact={:.4} mc={:.4} ok={}",
            row.case,
            row.exact,
            row.monte_carlo.mean,
            row.consistent()
        );
    }

    // extensions
    println!("\n== Extensions ==");
    for row in compromise_sweep(&[1, 5, 10, 20]) {
        println!(
            "c={:<3} best F({}) = {:.4}",
            row.c, row.best_fixed_len, row.best_h
        );
    }
    write_csv(&dir.join("ext_cyclic.csv"), "l", &cyclic_vs_simple(30)).expect("csv");

    println!("\nall experiments complete; CSVs in {}", dir.display());
}
