//! Quantifies the Section-2 survey: anonymity degree of each deployed
//! system's route-selection strategy at the paper's scale, with the
//! equal-overhead optimum for contrast.

use anonroute_experiments::systems::{headline, survey_table};

fn main() {
    println!("== Surveyed systems at n=100, c=1 ==");
    println!(
        "{:<20} {:<20} {:>9} {:>8} {:>10} {:>8} {:>12}",
        "system", "strategy", "H* (bits)", "% ideal", "P[exposed]", "E[len]", "gap to opt"
    );
    for row in survey_table() {
        let gap = row
            .gap_to_optimal()
            .map(|g| format!("{g:>+12.4}"))
            .unwrap_or_else(|| format!("{:>12}", "-"));
        println!(
            "{:<20} {:<20} {:>9.4} {:>7.1}% {:>10.4} {:>8.2} {}",
            row.name,
            row.strategy,
            row.report.h_star,
            row.report.normalized * 100.0,
            row.report.p_exposed,
            row.report.expected_path_length,
            gap
        );
    }
    let (bound, best) = headline(99);
    println!("\nupper bound log2(n) = {bound:.4} bits");
    println!("best rerouting strategy found (unconstrained): H* = {best:.4} bits");
}
