//! Regenerates Figure 5: equal-mean comparison of fixed vs uniform
//! strategies — the variance effect and inequality (18)
//! (`n = 100`, `c = 1`).

use anonroute_experiments::figures::fig5;
use anonroute_experiments::output::{ensure_results_dir, print_table, write_csv};

fn main() {
    let dir = ensure_results_dir().expect("create results dir");
    for (i, (title, series)) in fig5().into_iter().enumerate() {
        print_table(&title, "L", &series);
        let file = dir.join(format!("fig5{}.csv", char::from(b'a' + i as u8)));
        write_csv(&file, "L", &series).expect("write csv");
    }
    // measured ordering at small means (the paper's ineq. 18 region)
    let d_panel = fig5()[3].1.clone();
    println!("\nMeasured ordering at L = 5 (panel d):");
    let mut at5: Vec<(String, f64)> = d_panel
        .iter()
        .filter_map(|s| {
            s.points
                .iter()
                .find(|p| p.0 == 5.0)
                .and_then(|p| p.1)
                .map(|y| (s.name.clone(), y))
        })
        .collect();
    at5.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    for (name, y) in at5 {
        println!("  {name:<12} H* = {y:.6}");
    }
    println!("\nCSV written to {}", dir.display());
}
