//! Extension experiments beyond the paper's numerics: heavier compromise
//! and cyclic (Crowds-style) path selection.

use anonroute_experiments::extensions::{
    compromise_sweep, cyclic_vs_simple, predecessor_degradation,
};
use anonroute_experiments::output::{ensure_results_dir, print_table, write_csv};

fn main() {
    println!("== EXT-C: effect of the compromised count c (n=100) ==");
    println!(
        "{:>4} {:>14} {:>12} {:>12}",
        "c", "best fixed l", "best H*", "H*(F(80))"
    );
    for row in compromise_sweep(&[1, 2, 3, 5, 8, 10, 15, 20]) {
        println!(
            "{:>4} {:>14} {:>12.4} {:>12.4}",
            row.c, row.best_fixed_len, row.best_h, row.h_long
        );
    }
    println!("\n(The long-path effect sharpens as c grows: long paths recruit");
    println!(" compromised nodes, so the optimum moves toward shorter paths.)");

    let series = cyclic_vs_simple(30);
    print_table(
        "EXT-CY: simple vs cyclic fixed-length strategies (n=100, c=1)",
        "l",
        &series,
    );
    let dir = ensure_results_dir().expect("create results dir");
    write_csv(&dir.join("ext_cyclic.csv"), "l", &series).expect("write csv");

    println!("\n== EXT-PRED: predecessor attack over path reformations (n=20, c=2) ==");
    println!("{:>8} {:>10} {:>12}", "rounds", "hit rate", "mean margin");
    for row in predecessor_degradation(20, 2, &[1, 5, 20, 50, 100, 300], 40) {
        println!(
            "{:>8} {:>10.3} {:>12.4}",
            row.rounds, row.hit_rate, row.mean_margin
        );
    }
    println!("\n(The per-message anonymity degree H* is an upper bound: repeated");
    println!(" communication with path reformation degrades toward identification,");
    println!(" as Wright et al. [23] showed.)");
    println!("\nCSV written to {}", dir.display());
}
