//! Cross-validation: exact engine vs Monte-Carlo vs attacking the fully
//! simulated protocol stack (onion crypto + network + adversary), the
//! live-vs-analytic grid — the same attack against a real loopback TCP
//! relay cluster through the campaign backend layer — and the
//! multi-round anonymity-decay table (the intersection adversary across
//! epochs, anchored to the single-round closed form).

use anonroute_experiments::validation::{decay_table, live_vs_analytic_table, validation_table};

fn main() {
    let messages = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(3000);
    println!("== exact vs Monte-Carlo vs simulated attack ({messages} messages) ==");
    println!(
        "{:<28} {:>10} {:>18} {:>18} {:>6}",
        "scenario", "exact", "monte-carlo (se)", "simulated (se)", "ok?"
    );
    let mut all_ok = true;
    for row in validation_table(messages, 2026) {
        let sim = row
            .simulated
            .map(|(m, se)| format!("{m:>10.4} ({se:.4})"))
            .unwrap_or_else(|| format!("{:>18}", "-"));
        let ok = row.consistent();
        all_ok &= ok;
        println!(
            "{:<28} {:>10.4} {:>10.4} ({:.4}) {:>18} {:>6}",
            row.case,
            row.exact,
            row.monte_carlo.mean,
            row.monte_carlo.std_error,
            sim,
            if ok { "yes" } else { "NO" }
        );
    }
    assert!(
        all_ok,
        "validation failed: estimates disagree with the exact engine"
    );
    println!("\nall estimates agree with the exact engine (4-sigma).");

    let live_messages = (messages / 10).clamp(100, 400);
    println!("\n== live TCP cluster vs analytic ({live_messages} messages per cell) ==");
    println!(
        "{:<44} {:>10} {:>24} {:>6}",
        "scenario", "exact", "live over TCP (se)", "ok?"
    );
    let mut live_ok = true;
    for row in live_vs_analytic_table(live_messages, 2026) {
        let ok = row.consistent();
        live_ok &= ok;
        let measured = match &row.live {
            Ok(live) => format!("{:>16.4} ({:.4})", live.h_star, live.std_error),
            Err(e) => format!("error: {e}"),
        };
        println!(
            "{:<44} {:>10.4} {:>24} {:>6}",
            row.case,
            row.exact,
            measured,
            if ok { "yes" } else { "NO" }
        );
    }
    assert!(
        live_ok,
        "live validation failed: TCP measurements disagree with the exact engine"
    );
    println!("\nlive TCP measurements agree with the exact engine (5-sigma).");

    let sessions = (messages * 2 / 3).max(500);
    println!("\n== multi-round anonymity decay ({sessions} persistent sessions) ==");
    println!(
        "{:<46} {:>10} {:>28} {:>8} {:>6}",
        "scenario", "exact H*1", "cumulative H* per epoch", "id-rate", "ok?"
    );
    let mut decay_ok = true;
    for row in decay_table(sessions, 2026) {
        let ok = row.consistent();
        decay_ok &= ok;
        let curve: Vec<String> = row
            .curve
            .per_epoch
            .iter()
            .map(|s| format!("{:.3}", s.mean_entropy_bits))
            .collect();
        println!(
            "{:<46} {:>10.4} {:>28} {:>8.3} {:>6}",
            row.case,
            row.exact_h1,
            curve.join(" > "),
            row.curve.last().identification_rate,
            if ok { "yes" } else { "NO" }
        );
    }
    assert!(
        decay_ok,
        "decay validation failed: epoch-1 must match the single-round H*(S) and \
         cumulative entropy must be non-increasing"
    );
    println!("\ndecay curves anchor to the one-shot closed form and are non-increasing.");
}
