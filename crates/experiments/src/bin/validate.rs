//! Three-way cross-validation: exact engine vs Monte-Carlo vs attacking
//! the fully simulated protocol stack (onion crypto + network + adversary).

use anonroute_experiments::validation::validation_table;

fn main() {
    let messages = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(3000);
    println!("== exact vs Monte-Carlo vs simulated attack ({messages} messages) ==");
    println!(
        "{:<28} {:>10} {:>18} {:>18} {:>6}",
        "scenario", "exact", "monte-carlo (se)", "simulated (se)", "ok?"
    );
    let mut all_ok = true;
    for row in validation_table(messages, 2026) {
        let sim = row
            .simulated
            .map(|(m, se)| format!("{m:>10.4} ({se:.4})"))
            .unwrap_or_else(|| format!("{:>18}", "-"));
        let ok = row.consistent();
        all_ok &= ok;
        println!(
            "{:<28} {:>10.4} {:>10.4} ({:.4}) {:>18} {:>6}",
            row.case,
            row.exact,
            row.monte_carlo.mean,
            row.monte_carlo.std_error,
            sim,
            if ok { "yes" } else { "NO" }
        );
    }
    assert!(
        all_ok,
        "validation failed: estimates disagree with the exact engine"
    );
    println!("\nall estimates agree with the exact engine (4-sigma).");
}
