//! Regeneration of every figure in the paper's evaluation (Section 6).
//!
//! All figures use the paper's configuration: `n = 100` nodes, `c = 1`
//! compromised node, simple paths. Simple paths in a 100-node system
//! support at most 99 intermediate hops, so sweeps that the paper draws to
//! `x = 100` stop at the feasibility boundary.
//!
//! The single-axis sweeps (Figures 3 and 4) are thin
//! [`anonroute_campaign`] grids: each figure declares its strategy axis
//! and maps the campaign cells back onto a plotted [`Series`], inheriting
//! the runner's parallelism and shared-evaluator memoization. Infeasible
//! cells (e.g. `U(a, a+Δ)` past the `n - 1` support bound) come back as
//! per-cell errors and turn into gaps in the series.

use anonroute_campaign::{run, CampaignConfig, CellResult, ScenarioGrid, StrategySpec};
use anonroute_core::engine::simple::Evaluator;
use anonroute_core::{optimize, PathLengthDist, SystemModel};

use crate::output::Series;

/// The paper's evaluation setting.
pub fn paper_model() -> SystemModel {
    SystemModel::new(100, 1).expect("valid constants")
}

fn evaluator(model: &SystemModel) -> Evaluator {
    Evaluator::new(model, model.n() - 1).expect("lmax = n-1 is valid")
}

fn h_fixed(ev: &Evaluator, lmax: usize, l: usize) -> f64 {
    let mut pmf = vec![0.0; lmax + 1];
    pmf[l] = 1.0;
    ev.h_star(&pmf)
}

fn h_uniform(ev: &Evaluator, a: usize, b: usize) -> f64 {
    ev.h_star(PathLengthDist::uniform(a, b).expect("a <= b").pmf())
}

/// Runs a strategy sweep at the paper's `n = 100`, `c = 1` setting and
/// returns the cells in strategy order.
pub(crate) fn paper_campaign(strategies: Vec<StrategySpec>) -> Vec<CellResult> {
    let grid = ScenarioGrid::new().ns([100]).cs([1]).strategies(strategies);
    run(&grid, &CampaignConfig::default()).cells
}

/// Extracts `H*` per cell, mapping infeasible cells to gaps.
pub(crate) fn h_points(cells: &[CellResult], x: impl Fn(usize) -> f64) -> Vec<(f64, Option<f64>)> {
    cells
        .iter()
        .enumerate()
        .map(|(i, cell)| (x(i), cell.outcome.as_ref().ok().map(|m| m.h_star)))
        .collect()
}

/// Figure 3(a): anonymity degree vs fixed path length, `l ∈ 0..=99`.
pub fn fig3a() -> Series {
    let cells = paper_campaign((0..=99).map(StrategySpec::Fixed).collect());
    Series {
        name: "H*(F(l))".into(),
        points: h_points(&cells, |i| i as f64),
    }
}

/// Figure 3(b): the short-path zoom, `l ∈ 0..=4`.
pub fn fig3b() -> Series {
    let cells = paper_campaign((0..=4).map(StrategySpec::Fixed).collect());
    Series {
        name: "H*(F(l))".into(),
        points: h_points(&cells, |i| i as f64),
    }
}

/// One Figure-4 panel: `H*` of `U(a, a+Δ)` as the spread Δ grows, for
/// each lower bound in `bases`.
pub fn fig4_panel(bases: &[usize], max_delta: usize) -> Vec<Series> {
    let strategies: Vec<StrategySpec> = bases
        .iter()
        .flat_map(|&a| (0..=max_delta).map(move |d| StrategySpec::Uniform(a, a + d)))
        .collect();
    let cells = paper_campaign(strategies);
    bases
        .iter()
        .zip(cells.chunks(max_delta + 1))
        .map(|(&a, chunk)| Series {
            name: format!("U({a},{a}+D)"),
            points: h_points(chunk, |i| i as f64),
        })
        .collect()
}

/// All four Figure-4 panels, with the paper's lower-bound groups.
pub fn fig4() -> [(String, Vec<Series>); 4] {
    [
        (
            "Figure 4(a): small lower bounds".into(),
            fig4_panel(&[4, 6, 10], 89),
        ),
        (
            "Figure 4(b): intermediate lower bounds".into(),
            fig4_panel(&[25, 40], 74),
        ),
        (
            "Figure 4(c): large lower bounds (long-path regime)".into(),
            fig4_panel(&[51, 60, 70], 48),
        ),
        (
            "Figure 4(d): short-path regime".into(),
            fig4_panel(&[0, 1, 6], 93),
        ),
    ]
}

/// One Figure-5 panel: equal-mean comparison of `F(L)` against
/// `U(a, 2L-a)` for each `a` in `bases`, sweeping the mean `L`.
pub fn fig5_panel(bases: &[usize], l_from: usize, l_to: usize) -> Vec<Series> {
    let model = paper_model();
    let ev = evaluator(&model);
    let mut series = Vec::new();
    let fixed_pts = (l_from..=l_to)
        .map(|l| (l as f64, Some(h_fixed(&ev, 99, l))))
        .collect();
    series.push(Series {
        name: "F(L)".into(),
        points: fixed_pts,
    });
    for &a in bases {
        let points = (l_from..=l_to)
            .map(|l| {
                let x = l as f64;
                // U(a, 2L-a) has mean L; defined when a <= L and 2L-a <= 99
                if l >= a && 2 * l - a < model.n() {
                    (x, Some(h_uniform(&ev, a, 2 * l - a)))
                } else {
                    (x, None)
                }
            })
            .collect();
        series.push(Series {
            name: format!("U({a},2L-{a})"),
            points,
        });
    }
    series
}

/// All four Figure-5 panels with the paper's groupings.
pub fn fig5() -> [(String, Vec<Series>); 4] {
    [
        (
            "Figure 5(a): variance at equal mean, small bounds".into(),
            fig5_panel(&[4, 6, 10], 1, 50),
        ),
        (
            "Figure 5(b): intermediate bounds".into(),
            fig5_panel(&[25, 40], 25, 62),
        ),
        (
            "Figure 5(c): large bounds".into(),
            fig5_panel(&[51, 70], 51, 75),
        ),
        (
            "Figure 5(d): short-path bounds (ineq. 18)".into(),
            fig5_panel(&[1, 2, 6], 1, 50),
        ),
    ]
}

/// Figure 6: the optimization result. For each expected length `L`,
/// compares `F(L)`, the paper's family pick `U(2, 2L-2)`, the best uniform
/// spread `U(L-Δ*, L+Δ*)`, and the general mean-constrained optimum over
/// all distributions on `0..=lmax`.
pub fn fig6(l_from: usize, l_to: usize, lmax: usize) -> Vec<Series> {
    let model = paper_model();
    let ev = evaluator(&model);
    let mut fixed = Vec::new();
    let mut u2 = Vec::new();
    let mut best_uniform = Vec::new();
    let mut optimal = Vec::new();
    for l in l_from..=l_to {
        let x = l as f64;
        fixed.push((x, Some(h_fixed(&ev, 99, l))));
        u2.push((
            x,
            (l >= 2 && 2 * l - 2 <= 99).then(|| h_uniform(&ev, 2, 2 * l - 2)),
        ));
        let (_, fam) =
            optimize::best_uniform_with_mean(&model, lmax, l).expect("mean within support");
        best_uniform.push((x, Some(fam.h_star)));
        let opt =
            optimize::maximize_with_mean(&model, lmax, l as f64).expect("mean within support");
        optimal.push((x, Some(opt.h_star)));
    }
    vec![
        Series {
            name: "F(L)".into(),
            points: fixed,
        },
        Series {
            name: "U(2,2L-2)".into(),
            points: u2,
        },
        Series {
            name: "best U(L-D,L+D)".into(),
            points: best_uniform,
        },
        Series {
            name: "Optimization".into(),
            points: optimal,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3a_reproduces_the_papers_shape() {
        let s = fig3a();
        assert_eq!(s.points.len(), 100);
        let y = |l: usize| s.points[l].1.unwrap();
        // anchors from the paper's plot
        assert_eq!(y(0), 0.0);
        assert!((y(1) - 6.4824).abs() < 1e-3);
        assert!((y(1) - y(2)).abs() < 1e-12);
        // rises, peaks strictly inside, falls: the long-path effect
        let (peak_x, peak_y) = s.argmax().unwrap();
        assert!(peak_x > 10.0 && peak_x < 90.0, "peak at {peak_x}");
        assert!(peak_y > 6.53 && peak_y < 6.55, "peak {peak_y}");
        assert!(y(99) < peak_y);
        // the whole curve lives in the paper's axis range [6.48, 6.54]
        for l in 1..=99 {
            assert!(y(l) > 6.45 && y(l) < 6.55, "l={l}: {}", y(l));
        }
    }

    #[test]
    fn fig4d_zero_lower_bound_is_bad_when_short() {
        let panels = fig4();
        let d_panel = &panels[3].1;
        let u0 = &d_panel[0]; // U(0, D)
        let u6 = &d_panel[2]; // U(6, 6+D)
                              // small spread: U(0,·) much worse (receiver sees the sender often)
        let at = |s: &Series, d: usize| s.points[d].1.unwrap();
        assert!(at(u0, 4) < at(u6, 4) - 0.01);
        // large spread: U(0,·) catches up (the paper's observation)
        assert!(at(u0, 80) > at(u0, 4));
    }

    #[test]
    fn fig5a_curves_overlay_for_lower_bounds_at_least_three() {
        // Theorem 3: same mean ⇒ same H* when a >= 3, so the F(L) and
        // U(a, 2L-a) curves coincide wherever defined
        let panels = fig5();
        let a_panel = &panels[0].1;
        let f = &a_panel[0];
        for s in &a_panel[1..] {
            for (pf, ps) in f.points.iter().zip(&s.points) {
                if let (Some(yf), Some(ys)) = (pf.1, ps.1) {
                    assert!((yf - ys).abs() < 1e-12, "x={} {} vs {}", pf.0, yf, ys);
                }
            }
        }
    }

    #[test]
    fn fig5d_low_bounds_differ_from_fixed() {
        let panels = fig5();
        let d_panel = &panels[3].1;
        let f = &d_panel[0];
        let u1 = &d_panel[1];
        // at mean 5 the curves must differ measurably
        let idx = f.points.iter().position(|p| p.0 == 5.0).unwrap();
        let yf = f.points[idx].1.unwrap();
        let y1 = u1.points[idx].1.unwrap();
        assert!((yf - y1).abs() > 1e-4);
    }

    #[test]
    fn fig6_optimization_dominates_families() {
        let series = fig6(3, 10, 30);
        let get = |name: &str| series.iter().find(|s| s.name == name).unwrap();
        let opt = get("Optimization");
        let fam = get("best U(L-D,L+D)");
        let fixed = get("F(L)");
        for i in 0..opt.points.len() {
            let o = opt.points[i].1.unwrap();
            let u = fam.points[i].1.unwrap();
            let f = fixed.points[i].1.unwrap();
            assert!(o >= u - 1e-9, "x={}: opt {o} < family {u}", opt.points[i].0);
            assert!(
                u >= f - 1e-9,
                "x={}: family {u} < fixed {f}",
                opt.points[i].0
            );
        }
        // and the variable-length optimum strictly beats fixed somewhere
        let strictly = opt
            .points
            .iter()
            .zip(&fixed.points)
            .any(|(o, f)| o.1.unwrap() > f.1.unwrap() + 1e-6);
        assert!(strictly, "optimization should strictly beat fixed lengths");
    }
}
