//! Validation experiments: theorem closed forms vs the engine, the
//! exact analysis vs Monte-Carlo vs full protocol simulation, the
//! live-vs-analytic grid (closed form vs a real loopback TCP cluster,
//! both scored through the campaign `EvalBackend` layer), and the
//! multi-round anonymity-decay table (epoch-1 anchored to the
//! single-round `H*(S)`, cumulative entropy non-increasing).

use anonroute_adversary::{attack_trace, Adversary};
use anonroute_campaign::{
    run as campaign_run, CampaignConfig, EngineKind, ScenarioGrid, StrategySpec,
};
use anonroute_core::engine::{estimate_anonymity_degree, MonteCarloEstimate};
use anonroute_core::epochs::{
    estimate_decay, ChurnModel, DecayCurve, EpochSchedule, RotationPolicy,
};
use anonroute_core::{analytic, engine, PathKind, PathLengthDist, SampledDegree, SystemModel};
use anonroute_protocols::crowds::crowd;
use anonroute_protocols::onion_routing::onion_network;
use anonroute_protocols::RouteSampler;
use anonroute_sim::{LatencyModel, SimTime, Simulation};

/// One row of the theorem-validation table.
#[derive(Debug, Clone, PartialEq)]
pub struct TheoremRow {
    /// Human-readable case description.
    pub case: String,
    /// Closed-form value.
    pub closed_form: f64,
    /// General-engine value.
    pub engine: f64,
}

impl TheoremRow {
    /// Absolute disagreement.
    pub fn error(&self) -> f64 {
        (self.closed_form - self.engine).abs()
    }
}

/// Validates Theorems 1–3 against the general engine on the paper's
/// `n = 100`, `c = 1` configuration.
pub fn theorem_table() -> Vec<TheoremRow> {
    let n = 100;
    let model = SystemModel::new(n, 1).expect("valid");
    let mut rows = Vec::new();
    for l in [0usize, 1, 2, 3, 4, 5, 10, 31, 51, 99] {
        rows.push(TheoremRow {
            case: format!("Thm 1: F({l})"),
            closed_form: analytic::theorem1_fixed(n, l).expect("valid l"),
            engine: engine::anonymity_degree(&model, &PathLengthDist::fixed(l)).expect("valid"),
        });
    }
    for (l1, p, l2) in [
        (1usize, 0.5, 4usize),
        (2, 0.25, 9),
        (3, 0.8, 7),
        (0, 0.1, 5),
    ] {
        rows.push(TheoremRow {
            case: format!("Thm 2: {{{l1} w.p. {p}, {l2}}}"),
            closed_form: analytic::theorem2_two_point(n, l1, p, l2).expect("valid"),
            engine: engine::anonymity_degree(
                &model,
                &PathLengthDist::two_point(l1, p, l2).expect("valid"),
            )
            .expect("valid"),
        });
    }
    for (a, b) in [
        (3usize, 9usize),
        (4, 8),
        (6, 6),
        (3, 21),
        (10, 40),
        (25, 75),
    ] {
        rows.push(TheoremRow {
            case: format!("Thm 3: U({a},{b})"),
            closed_form: analytic::theorem3_uniform(n, a, b).expect("valid"),
            engine: engine::anonymity_degree(&model, &PathLengthDist::uniform(a, b).expect("ok"))
                .expect("valid"),
        });
    }
    rows
}

/// One row of the three-way validation: exact engine, core Monte-Carlo,
/// and the full protocol-simulation attack.
#[derive(Debug, Clone)]
pub struct ValidationRow {
    /// Scenario description.
    pub case: String,
    /// Exact engine value.
    pub exact: f64,
    /// Core Monte-Carlo estimate (samples observations directly).
    pub monte_carlo: MonteCarloEstimate,
    /// Empirical value from attacking the simulated protocol, with its
    /// standard error, when the scenario has a protocol implementation.
    pub simulated: Option<(f64, f64)>,
}

impl ValidationRow {
    /// Whether both estimates agree with the exact value at ~4 sigma.
    pub fn consistent(&self) -> bool {
        let mc_ok =
            (self.monte_carlo.mean - self.exact).abs() <= 4.0 * self.monte_carlo.std_error + 1e-9;
        let sim_ok = self
            .simulated
            .is_none_or(|(m, se)| (m - self.exact).abs() <= 4.0 * se + 1e-9);
        mc_ok && sim_ok
    }
}

/// Runs the analysis/simulation cross-validation suite.
///
/// `messages` controls the protocol-simulation sample size (3 000 is a
/// good default; the Monte-Carlo estimator uses 4x that).
pub fn validation_table(messages: usize, seed: u64) -> Vec<ValidationRow> {
    let mut rows = Vec::new();

    // --- onion routing, simple paths, several strategies -----------------
    for (name, n, c, dist) in [
        (
            "onion F(5), n=30, c=1",
            30usize,
            1usize,
            PathLengthDist::fixed(5),
        ),
        (
            "onion U(1,6), n=30, c=1",
            30,
            1,
            PathLengthDist::uniform(1, 6).expect("ok"),
        ),
        (
            "onion U(2,8), n=25, c=3",
            25,
            3,
            PathLengthDist::uniform(2, 8).expect("ok"),
        ),
    ] {
        let model = SystemModel::new(n, c).expect("valid");
        let exact = engine::anonymity_degree(&model, &dist).expect("valid");
        let mc = estimate_anonymity_degree(&model, &dist, messages * 4, seed).expect("valid");

        let sampler = RouteSampler::new(n, dist.clone(), PathKind::Simple).expect("valid");
        let nodes = onion_network(n, &sampler, 2048, b"validate").expect("valid");
        let mut sim = Simulation::new(nodes, LatencyModel::Uniform { lo: 50, hi: 500 }, seed);
        let mut salt = seed | 1;
        for i in 0..messages as u64 {
            salt = salt
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            sim.schedule_origination(
                SimTime::from_micros(i * 100),
                (salt >> 33) as usize % n,
                vec![0u8; 4],
            );
        }
        sim.run();
        let compromised: Vec<usize> = (0..c).map(|k| n - 1 - k).collect();
        let adv = Adversary::new(n, &compromised).expect("valid");
        let report =
            attack_trace(&adv, &model, &dist, sim.trace(), sim.originations()).expect("valid");
        rows.push(ValidationRow {
            case: name.into(),
            exact,
            monte_carlo: mc,
            simulated: Some((report.empirical_h_star, report.std_error)),
        });
    }

    // --- Crowds, cyclic paths --------------------------------------------
    {
        let n = 20;
        let pf = 0.6;
        let dist = PathLengthDist::geometric(pf, 40).expect("valid");
        let model = SystemModel::with_path_kind(n, 1, PathKind::Cyclic).expect("valid");
        let exact = engine::anonymity_degree(&model, &dist).expect("valid");
        let mc = estimate_anonymity_degree(&model, &dist, messages * 4, seed).expect("valid");
        let mut sim = Simulation::new(
            crowd(n, pf).expect("valid"),
            LatencyModel::Constant(100),
            seed,
        );
        let mut salt = seed | 1;
        for i in 0..messages as u64 {
            salt = salt
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            sim.schedule_origination(
                SimTime::from_micros(i * 1000),
                (salt >> 33) as usize % n,
                vec![1],
            );
        }
        sim.run();
        let adv = Adversary::new(n, &[0]).expect("valid");
        let report =
            attack_trace(&adv, &model, &dist, sim.trace(), sim.originations()).expect("valid");
        rows.push(ValidationRow {
            case: format!("Crowds pf={pf}, n={n}, c=1"),
            exact,
            monte_carlo: mc,
            simulated: Some((report.empirical_h_star, report.std_error)),
        });
    }

    // --- pure Monte-Carlo checks at the paper's scale ---------------------
    for (name, dist) in [
        ("paper n=100 c=1, F(31)", PathLengthDist::fixed(31)),
        (
            "paper n=100 c=1, U(2,60)",
            PathLengthDist::uniform(2, 60).expect("ok"),
        ),
    ] {
        let model = SystemModel::new(100, 1).expect("valid");
        let exact = engine::anonymity_degree(&model, &dist).expect("valid");
        let mc = estimate_anonymity_degree(&model, &dist, messages * 4, seed).expect("valid");
        rows.push(ValidationRow {
            case: name.into(),
            exact,
            monte_carlo: mc,
            simulated: None,
        });
    }

    rows
}

/// One row of the live-vs-analytic validation: the same scenario scored
/// by the closed-form backend and by a real loopback TCP relay cluster.
#[derive(Debug, Clone)]
pub struct LiveRow {
    /// Scenario identity (the campaign cell's `Display` form).
    pub case: String,
    /// Closed-form `H*` from the exact backend.
    pub exact: f64,
    /// Measured `H*` from the live cluster's link tap, or the cell's
    /// error string (e.g. the watchdog fired on an overloaded machine) —
    /// an errored cell degrades to an inconsistent row, never a panic.
    pub live: Result<SampledDegree, String>,
}

impl LiveRow {
    /// Whether the live measurement exists and agrees with the exact
    /// value at ~5 sigma.
    pub fn consistent(&self) -> bool {
        self.live
            .as_ref()
            .is_ok_and(|live| live.agrees_with(self.exact, 5.0))
    }
}

/// Runs the live-vs-analytic validation grid: a campaign sweep whose
/// engine axis is `[exact, live]`, so every scenario is scored both in
/// closed form and over genuine TCP sockets through the shared
/// `EvalBackend` layer.
///
/// `messages` is the per-cell live workload size (150–400 is plenty;
/// each message runs real handshakes and socket hops).
pub fn live_vs_analytic_table(messages: usize, seed: u64) -> Vec<LiveRow> {
    let grid = ScenarioGrid::new()
        .ns([8])
        .cs([1])
        .path_kinds([PathKind::Simple, PathKind::Cyclic])
        .strategies([StrategySpec::Geometric {
            forward_prob: 0.5,
            lmax: 6,
        }])
        .engines([EngineKind::Exact, EngineKind::Live]);
    let config = CampaignConfig {
        live_messages: messages,
        seed,
        ..CampaignConfig::default()
    };
    let outcome = campaign_run(&grid, &config);
    outcome
        .cells
        .chunks(2)
        .map(|pair| {
            let exact = pair[0]
                .outcome
                .as_ref()
                .expect("exact cells of this grid are feasible and deterministic");
            let live = match &pair[1].outcome {
                Ok(metrics) => Ok(metrics.sampled().expect("live cells are sampled")),
                Err(e) => Err(e.clone()),
            };
            LiveRow {
                case: pair[1].scenario.to_string(),
                exact: exact.h_star,
                live,
            }
        })
        .collect()
}

/// One row of the anonymity-decay validation: a multi-round scenario
/// with its closed-form single-round anchor and the sampled cumulative
/// decay curve.
#[derive(Debug, Clone)]
pub struct DecayRow {
    /// Scenario description (system, strategy, schedule).
    pub case: String,
    /// The closed-form single-round `H*(S)` the decay must start from.
    pub exact_h1: f64,
    /// The sampled cumulative decay (exact per-round posteriors).
    pub curve: DecayCurve,
}

impl DecayRow {
    /// Whether the curve anchors to the closed form (epoch-1 mean within
    /// ~4 sigma of `H*(S)`) and the mean cumulative entropy is
    /// non-increasing across epochs up to sampling noise (the decrease
    /// is exact only in expectation — see `anonroute_core::epochs` — so
    /// an arbitrary session count gets std-error slack; the default
    /// configuration is pinned strictly monotone by the test suite).
    pub fn consistent(&self) -> bool {
        let first = self.curve.first();
        let anchored =
            (first.mean_entropy_bits - self.exact_h1).abs() <= 4.0 * first.std_error + 1e-9;
        let max_se = self
            .curve
            .per_epoch
            .iter()
            .map(|s| s.std_error)
            .fold(0.0, f64::max);
        anchored && self.curve.entropy_non_increasing(6.0 * max_se)
    }
}

/// Runs the multi-round decay validation: three dynamics regimes —
/// repeated static observation, compromised-set rotation, and node
/// churn — each anchored against the single-round closed form and
/// required to decay monotonically.
///
/// `sessions` persistent sessions per row (2 000 is a good default);
/// everything derives from `seed`, bit for bit.
pub fn decay_table(sessions: usize, seed: u64) -> Vec<DecayRow> {
    let cases: [(&str, usize, usize, PathLengthDist, EpochSchedule); 3] = [
        (
            "static, n=20 c=1, U(1,4)",
            20,
            1,
            PathLengthDist::uniform(1, 4).expect("valid"),
            EpochSchedule::rounds(4),
        ),
        (
            "rotation shift:5, n=20 c=2, F(3)",
            20,
            2,
            PathLengthDist::fixed(3),
            EpochSchedule {
                epochs: 4,
                rotation: RotationPolicy::Shift { step: 5 },
                churn: ChurnModel::None,
            },
        ),
        (
            "churn iid:0.3, n=24 c=1, U(1,3)",
            24,
            1,
            PathLengthDist::uniform(1, 3).expect("valid"),
            EpochSchedule {
                epochs: 4,
                rotation: RotationPolicy::Static,
                churn: ChurnModel::Iid { rate: 0.3 },
            },
        ),
    ];
    cases
        .into_iter()
        .map(|(name, n, c, dist, schedule)| {
            let model = SystemModel::new(n, c).expect("valid");
            let exact_h1 = engine::anonymity_degree(&model, &dist).expect("valid");
            let curve = estimate_decay(&model, &dist, &schedule, sessions, seed, 0).expect("valid");
            DecayRow {
                case: format!("{name}, {schedule}"),
                exact_h1,
                curve,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorems_agree_with_engine_to_machine_precision() {
        for row in theorem_table() {
            assert!(row.error() < 1e-11, "{}: error {}", row.case, row.error());
        }
    }

    #[test]
    fn live_validation_grid_is_consistent() {
        let rows = live_vs_analytic_table(150, 31);
        assert_eq!(rows.len(), 2, "simple and cyclic scenarios");
        for row in rows {
            assert!(row.case.contains("[live]"));
            assert!(
                row.consistent(),
                "{}: exact={} live={:?}",
                row.case,
                row.exact,
                row.live
            );
        }
    }

    #[test]
    fn decay_table_anchors_and_decays_monotonically() {
        let rows = decay_table(2_000, 2026);
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert_eq!(row.curve.per_epoch.len(), 4);
            assert!(
                row.consistent(),
                "{}: exact_h1={} curve={:?}",
                row.case,
                row.exact_h1,
                row.curve.per_epoch
            );
            // the acceptance anchor: at the default sessions/seed the
            // emitted table is *strictly* non-increasing, no slack
            assert!(
                row.curve.entropy_non_increasing(0.0),
                "{}: {:?}",
                row.case,
                row.curve.per_epoch
            );
            // the adversary must actually gain something over 4 rounds
            assert!(
                row.curve.last().mean_entropy_bits < row.exact_h1 - 0.1,
                "{}: no measurable decay",
                row.case
            );
        }
        // determinism: the table is a pure function of (sessions, seed)
        let again = decay_table(2_000, 2026);
        for (a, b) in rows.iter().zip(&again) {
            assert_eq!(a.curve, b.curve);
        }
    }

    #[test]
    fn three_way_validation_is_consistent() {
        for row in validation_table(1500, 99) {
            assert!(
                row.consistent(),
                "{}: exact={} mc={:?} sim={:?}",
                row.case,
                row.exact,
                row.monte_carlo,
                row.simulated
            );
        }
    }
}
