//! # anonroute-experiments
//!
//! The harness that regenerates every figure in the evaluation section of
//! Guan et al. (ICDCS 2002), plus validation and extension experiments.
//! Each experiment is a library function (testable) with a thin binary
//! wrapper; binaries print aligned tables to stdout and write CSVs under
//! `results/` (override with the `ANONROUTE_RESULTS` environment
//! variable).
//!
//! | binary | reproduces |
//! |--------|------------|
//! | `fig3` | Figure 3(a)/(b): H* vs fixed path length (short/long-path effects) |
//! | `fig4` | Figure 4(a)–(d): H* vs spread of `U(a, a+Δ)` |
//! | `fig5` | Figure 5(a)–(d): equal-mean variance comparison, ineq. (18) |
//! | `fig6` | Figure 6: optimal path-length distribution vs uniform/fixed |
//! | `theorems` | Theorems 1–3 closed forms vs the general engine |
//! | `systems` | Section 2 survey quantified + DC-Net baseline |
//! | `validate` | exact vs Monte-Carlo vs simulated-protocol attack, live-vs-analytic TCP grid, and the multi-round anonymity-decay table |
//! | `extensions` | c-sweep and cyclic-vs-simple paths |
//! | `all` | everything above |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod extensions;
pub mod figures;
pub mod output;
pub mod systems;
pub mod validation;

pub use output::{print_table, write_csv, Series};
