//! Extension experiments beyond the paper's `c = 1` numerics: the effect
//! of heavier compromise, and simple vs cyclic (Crowds-style) paths.
//!
//! Both sweeps are thin [`anonroute_campaign`] grids — the compromise
//! sweep spans `c × l` and the path-kind comparison spans
//! `path_kind × l` — so they inherit the runner's parallelism and shared
//! per-model evaluators.

use anonroute_campaign::{run, CampaignConfig, ScenarioGrid, StrategySpec};
use anonroute_core::{PathKind, PathLengthDist, SystemModel};

use crate::output::Series;

/// EXT-C: for each number of compromised nodes `c`, the best fixed path
/// length and its anonymity degree (`n = 100`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompromiseRow {
    /// Compromised node count.
    pub c: usize,
    /// Fixed length maximizing `H*`.
    pub best_fixed_len: usize,
    /// The maximum `H*` over fixed lengths.
    pub best_h: f64,
    /// `H*` of the paper's long-path regime, `F(80)`, for contrast.
    pub h_long: f64,
}

/// Sweeps `c ∈ cs` and locates the fixed-length optimum for each, as a
/// `c × l` campaign grid (`100` fixed-length cells per compromise level).
pub fn compromise_sweep(cs: &[usize]) -> Vec<CompromiseRow> {
    let n = 100;
    let grid = ScenarioGrid::new()
        .ns([n])
        .cs(cs.iter().copied())
        .strategies((0..n).map(StrategySpec::Fixed));
    let outcome = run(&grid, &CampaignConfig::default());
    cs.iter()
        .zip(outcome.cells.chunks(n))
        .map(|(&c, chunk)| {
            let h = |l: usize| {
                chunk[l]
                    .outcome
                    .as_ref()
                    .expect("feasible fixed length")
                    .h_star
            };
            // first maximum wins ties, as in the pre-campaign implementation
            let best_fixed_len = (0..n).fold(0, |best, l| if h(l) > h(best) { l } else { best });
            CompromiseRow {
                c,
                best_fixed_len,
                best_h: h(best_fixed_len),
                h_long: h(80),
            }
        })
        .collect()
}

/// EXT-CY: anonymity degree of fixed-length strategies on simple vs
/// cyclic paths (`n = 100`, `c = 1`), `l ∈ 1..=max_len`, as a
/// `path_kind × l` campaign grid.
pub fn cyclic_vs_simple(max_len: usize) -> Vec<Series> {
    let grid = ScenarioGrid::new()
        .ns([100])
        .cs([1])
        .path_kinds([PathKind::Simple, PathKind::Cyclic])
        .strategies((1..=max_len).map(StrategySpec::Fixed));
    let outcome = run(&grid, &CampaignConfig::default());
    ["simple", "cyclic"]
        .iter()
        .zip(outcome.cells.chunks(max_len))
        .map(|(name, chunk)| Series {
            name: (*name).into(),
            points: crate::figures::h_points(chunk, |i| (i + 1) as f64),
        })
        .collect()
}

/// EXT-PRED: one row of the predecessor-attack degradation experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredecessorRow {
    /// Path reformations observed by the adversary.
    pub rounds: usize,
    /// Fraction of independent trials in which the attack's top suspect
    /// was the true sender.
    pub hit_rate: f64,
    /// Mean final margin between the top suspect and the runner-up.
    pub mean_margin: f64,
}

/// Runs the predecessor attack (the paper's reference \[23\]) against a
/// persistent sender that reforms its path every round, for increasing
/// numbers of observed rounds. Each data point averages `trials`
/// independent deployments.
pub fn predecessor_degradation(
    n: usize,
    c: usize,
    rounds_schedule: &[usize],
    trials: usize,
) -> Vec<PredecessorRow> {
    use anonroute_adversary::{predecessor_attack, Adversary};
    use anonroute_core::engine::{observe, sample_path};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let dist = PathLengthDist::uniform(2, 6).expect("valid");
    let model = SystemModel::new(n, c).expect("valid");
    let adv_ids: Vec<usize> = (n - c..n).collect();
    let adv = Adversary::new(n, &adv_ids).expect("valid");
    rounds_schedule
        .iter()
        .map(|&rounds| {
            let mut hits = 0usize;
            let mut margin_sum = 0.0;
            for trial in 0..trials {
                let mut rng = StdRng::seed_from_u64(trial as u64 * 7919 + rounds as u64);
                let sender = trial % (n - c); // always an honest sender
                let mut scratch: Vec<usize> = (0..n).collect();
                let obs: Vec<_> = (0..rounds)
                    .map(|_| {
                        let l = dist.sample(&mut rng);
                        let path = sample_path(&model, sender, l, &mut rng, &mut scratch);
                        observe(sender, &path, adv.compromised())
                    })
                    .collect();
                let outcome = predecessor_attack(&adv, &obs, sender).expect("nonempty");
                hits += outcome.correct as usize;
                margin_sum += outcome.final_margin;
            }
            PredecessorRow {
                rounds,
                hit_rate: hits as f64 / trials as f64,
                mean_margin: margin_sum / trials as f64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heavier_compromise_shortens_the_optimal_path() {
        let rows = compromise_sweep(&[1, 5, 10, 20]);
        // monotone: more compromised nodes → shorter optimal paths and
        // lower anonymity
        for w in rows.windows(2) {
            assert!(w[1].best_fixed_len <= w[0].best_fixed_len, "{w:?}");
            assert!(w[1].best_h < w[0].best_h, "{w:?}");
        }
        // and the long-path penalty grows with c
        let gap = |r: &CompromiseRow| r.best_h - r.h_long;
        assert!(gap(&rows[3]) > gap(&rows[0]));
    }

    #[test]
    fn predecessor_hit_rate_grows_with_rounds() {
        let rows = predecessor_degradation(15, 2, &[1, 50, 300], 30);
        assert!(rows[0].hit_rate < rows[2].hit_rate);
        assert!(rows[2].hit_rate > 0.9, "300 rounds: {}", rows[2].hit_rate);
    }

    #[test]
    fn cyclic_paths_weakly_dominate_simple_paths() {
        // observed intermediates stay sender candidates on cyclic paths
        for (s, c) in cyclic_vs_simple(12)[0]
            .points
            .iter()
            .zip(&cyclic_vs_simple(12)[1].points)
        {
            assert!(c.1.unwrap() >= s.1.unwrap() - 1e-9, "l={}", s.0);
        }
    }
}
