//! Quantifying Section 2's survey: how anonymous are the deployed systems'
//! route-selection strategies, and how far from optimal is each?

use anonroute_core::{optimize, strategies, AnonymityReport, SystemModel};
use anonroute_protocols::dcnet;

/// Evaluation of one surveyed system.
#[derive(Debug, Clone)]
pub struct SystemRow {
    /// System name.
    pub name: String,
    /// Strategy summary (distribution display form).
    pub strategy: String,
    /// Full anonymity report under the evaluation model.
    pub report: AnonymityReport,
    /// `H*` of the optimal distribution with the same expected path length
    /// (same overhead budget), when computable.
    pub optimal_same_cost: Option<f64>,
}

impl SystemRow {
    /// Shortfall from the equal-cost optimum in bits.
    pub fn gap_to_optimal(&self) -> Option<f64> {
        self.optimal_same_cost.map(|o| o - self.report.h_star)
    }
}

/// Evaluates every surveyed system at the paper's scale (`n = 100`,
/// `c = 1`), plus the DC-Net baseline.
///
/// Cyclic-path systems (Crowds, Onion Routing II) are evaluated with the
/// cyclic engine; their equal-cost optimum is computed over simple-path
/// strategies, which is the design space the paper's optimization covers.
pub fn survey_table() -> Vec<SystemRow> {
    let n = 100;
    let c = 1;
    let lmax = 99;
    let mut rows = Vec::new();
    for s in strategies::surveyed_systems(lmax) {
        let model = SystemModel::with_path_kind(n, c, s.path_kind).expect("valid");
        let report = AnonymityReport::evaluate(&model, &s.dist).expect("valid strategy");
        let simple_model = SystemModel::new(n, c).expect("valid");
        let optimal_same_cost = optimize::maximize_with_mean(&simple_model, lmax, s.dist.mean())
            .ok()
            .map(|o| o.h_star);
        rows.push(SystemRow {
            name: s.name.to_string(),
            strategy: s.dist.to_string(),
            report,
            optimal_same_cost,
        });
    }
    // DC-Net baseline: no rerouting, information-theoretic hiding among
    // honest participants, at quadratic broadcast cost.
    let h_dc = dcnet::anonymity_degree(n, c);
    rows.push(SystemRow {
        name: "DC-Net (baseline)".into(),
        strategy: "broadcast round".into(),
        report: AnonymityReport {
            h_star: h_dc,
            normalized: h_dc / (n as f64).log2(),
            p_exposed: c as f64 / n as f64,
            expected_path_length: 0.0,
        },
        optimal_same_cost: None,
    });
    rows
}

/// The paper's bottom line, recomputed: the upper bound `log2 n` and the
/// best rerouting strategy found by the unconstrained optimizer.
pub fn headline(lmax: usize) -> (f64, f64) {
    let model = SystemModel::new(100, 1).expect("valid");
    let best = optimize::maximize(&model, lmax).expect("valid");
    (model.max_entropy_bits(), best.h_star)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn survey_covers_all_systems_plus_baseline() {
        let rows = survey_table();
        assert_eq!(rows.len(), 8);
        let h = |name: &str| rows.iter().find(|r| r.name == name).unwrap().report.h_star;
        // the paper's short-path effect: Freedom's F(3) is a hair *worse*
        // than Anonymizer's F(1), despite two extra hops
        assert!(h("Freedom") < h("Anonymizer"));
        assert!(h("Anonymizer") - h("Freedom") < 1e-3);
        // by F(5) the position ambiguity kicks in and Onion Routing I wins
        assert!(h("Onion Routing I") > h("Anonymizer") + 0.01);
        // DC-Net dominates every rerouting system at c=1
        let dc = h("DC-Net (baseline)");
        for r in &rows {
            if r.name != "DC-Net (baseline)" {
                assert!(dc >= r.report.h_star - 1e-9, "{} beats DC-Net", r.name);
            }
        }
    }

    #[test]
    fn no_system_beats_its_equal_cost_optimum() {
        for r in survey_table() {
            if let Some(gap) = r.gap_to_optimal() {
                // cyclic systems may exceed the simple-path optimum, since
                // observed intermediates stay candidates on cyclic paths
                if r.name != "Crowds" && r.name != "Onion Routing II" {
                    assert!(gap >= -1e-9, "{}: negative gap {gap}", r.name);
                }
            }
        }
    }

    #[test]
    fn headline_respects_entropy_bound() {
        let (bound, best) = headline(40);
        assert!(best < bound);
        assert!(best > 6.5);
    }
}
