//! Property-based tests on the analysis engines (proptest).
//!
//! These complement the module unit tests with randomized coverage:
//! random distributions, random system sizes, random concrete paths. The
//! central oracle is the brute-force enumerator, which computes the
//! anonymity degree directly from its definition.

use anonroute_core::engine::brute::anonymity_degree_brute;
use anonroute_core::engine::simple::Evaluator;
use anonroute_core::engine::{self, observe, sender_posterior};
use anonroute_core::mathutil::entropy_bits;
use anonroute_core::{analytic, PathKind, PathLengthDist, SystemModel};
use proptest::prelude::*;

/// Random pmf over `0..=lmax` with at least one positive entry.
fn arb_pmf(lmax: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..1.0, 1..=lmax + 1)
        .prop_filter("positive mass", |v| v.iter().sum::<f64>() > 1e-6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engine_matches_brute_force_on_random_simple_configs(
        pmf in arb_pmf(3),
        n in 4usize..7,
        c in 0usize..4,
    ) {
        prop_assume!(c <= n);
        let model = SystemModel::new(n, c).unwrap();
        let dist = PathLengthDist::from_pmf(pmf).unwrap();
        prop_assume!(dist.max_len() < n);
        let exact = engine::anonymity_degree(&model, &dist).unwrap();
        let brute = anonymity_degree_brute(&model, &dist).unwrap();
        prop_assert!((exact - brute).abs() < 1e-9, "exact {exact} vs brute {brute}");
    }

    #[test]
    fn engine_matches_brute_force_on_random_cyclic_configs(
        pmf in arb_pmf(3),
        n in 4usize..6,
        c in 1usize..3,
    ) {
        let model = SystemModel::with_path_kind(n, c, PathKind::Cyclic).unwrap();
        let dist = PathLengthDist::from_pmf(pmf).unwrap();
        let exact = engine::anonymity_degree(&model, &dist).unwrap();
        let brute = anonymity_degree_brute(&model, &dist).unwrap();
        prop_assert!((exact - brute).abs() < 1e-9, "exact {exact} vs brute {brute}");
    }

    #[test]
    fn evaluator_agrees_with_one_shot_analysis(pmf in arb_pmf(12)) {
        let model = SystemModel::new(30, 2).unwrap();
        let dist = PathLengthDist::from_pmf(pmf.clone()).unwrap();
        let a = engine::anonymity_degree(&model, &dist).unwrap();
        let ev = Evaluator::new(&model, 12).unwrap();
        let b = ev.h_star(&pmf);
        prop_assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn c1_closed_form_is_the_engine(pmf in arb_pmf(10), n in 6usize..60) {
        let model = SystemModel::new(n, 1).unwrap();
        let dist = PathLengthDist::from_pmf(pmf).unwrap();
        prop_assume!(dist.max_len() < n);
        prop_assume!(n >= 5);
        let a = engine::anonymity_degree(&model, &dist).unwrap();
        let b = analytic::anonymity_degree_c1(n, &dist).unwrap();
        prop_assert!((a - b).abs() < 1e-10);
    }

    #[test]
    fn posterior_entropy_never_exceeds_prior(
        seed in any::<u64>(),
        n in 5usize..12,
        c in 1usize..4,
        l in 0usize..5,
    ) {
        use rand::{Rng, SeedableRng};
        prop_assume!(c < n && l < n);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let sender = rng.gen_range(0..n);
        let mut pool: Vec<usize> = (0..n).filter(|&x| x != sender).collect();
        let mut path = Vec::new();
        for _ in 0..l {
            let k = rng.gen_range(0..pool.len());
            path.push(pool.swap_remove(k));
        }
        let compromised: Vec<bool> = (0..n).map(|i| i < c).collect();
        let model = SystemModel::new(n, c).unwrap();
        let dist = PathLengthDist::uniform(0, (n - 1).min(4)).unwrap();
        let obs = observe(sender, &path, &compromised);
        let post = sender_posterior(&model, &dist, &obs, &compromised).unwrap();
        let h = entropy_bits(&post);
        prop_assert!(h <= (n as f64).log2() + 1e-12);
        prop_assert!(post[sender] > 0.0);
    }

    #[test]
    fn observation_classes_partition_probability(
        pmf in arb_pmf(8),
        c in 0usize..5,
    ) {
        let model = SystemModel::new(20, c).unwrap();
        let dist = PathLengthDist::from_pmf(pmf).unwrap();
        let analysis = engine::analysis(&model, &dist).unwrap();
        let total: f64 = analysis.classes.iter().map(|r| r.probability).sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "total {total}");
        for report in &analysis.classes {
            prop_assert!(report.probability >= -1e-12);
            prop_assert!(report.entropy_bits >= -1e-12);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&report.suspect_posterior));
        }
        prop_assert!((0.0..=1.0 + 1e-9).contains(&analysis.p_exposed));
    }

    #[test]
    fn monte_carlo_is_consistent_with_exact(
        seed in any::<u64>(),
        c in 0usize..4,
    ) {
        let model = SystemModel::new(15, c).unwrap();
        let dist = PathLengthDist::uniform(1, 5).unwrap();
        let exact = engine::anonymity_degree(&model, &dist).unwrap();
        let est = engine::estimate_anonymity_degree(&model, &dist, 4_000, seed).unwrap();
        // 6 sigma: essentially never fails if the estimator is unbiased
        prop_assert!(
            (est.mean - exact).abs() <= 6.0 * est.std_error + 1e-9,
            "exact {exact}, est {est:?}"
        );
    }

    #[test]
    fn distribution_statistics_are_coherent(pmf in arb_pmf(20)) {
        let dist = PathLengthDist::from_pmf(pmf).unwrap();
        let mean = dist.mean();
        prop_assert!(mean >= dist.min_len() as f64 - 1e-12);
        prop_assert!(mean <= dist.max_len() as f64 + 1e-12);
        prop_assert!(dist.variance() >= -1e-12);
        prop_assert!((dist.tail(0) - 1.0).abs() < 1e-9);
        // E[(L-k)+] identity against tails
        for k in 0..5 {
            let excess = dist.expected_excess(k);
            let via_tails: f64 = (k + 1..=dist.max_len()).map(|j| dist.tail(j)).sum();
            prop_assert!((excess - via_tails).abs() < 1e-9);
        }
    }
}
