//! Property-based tests (vendored proptest) for the multi-round
//! dynamics layer: the `IntersectionPosterior` accumulator's invariants,
//! the schedule realizer's determinism, and the sampled decay curve's
//! statistical behavior.
//!
//! The accumulator invariants pinned here:
//!
//! * the cumulative posterior always stays normalized;
//! * a single folded epoch is **bit-identical** to the one-shot
//!   posterior path (no renormalization noise);
//! * the support never grows as epochs fold in (the intersection attack
//!   proper: a candidate excluded once stays excluded);
//! * re-folding the same evidence never increases entropy (escort
//!   sharpening), the per-realization half of the "entropy decays"
//!   claim — the full claim holds in expectation over sessions
//!   (conditioning reduces entropy) and is asserted on sampled decay
//!   curves with a standard-error tolerance.

use anonroute_core::engine::{observe, sender_posterior};
use anonroute_core::epochs::{
    estimate_decay, ChurnModel, EpochSchedule, IntersectionPosterior, RotationPolicy,
};
use anonroute_core::mathutil::entropy_bits;
use anonroute_core::{PathLengthDist, SystemModel};
use proptest::prelude::*;

/// Builds a normalized posterior over `n` candidates from raw weights
/// and a kill mask (observation-excluded candidates), always keeping
/// candidate 0 alive so folded sequences never go extinct.
fn posterior_from(raw: &[f64], kill: &[bool], n: usize) -> Vec<f64> {
    let mut post: Vec<f64> = (0..n)
        .map(|i| {
            let w = 0.01 + raw[i % raw.len()].abs().fract();
            if i != 0 && kill[i % kill.len()] {
                0.0
            } else {
                w
            }
        })
        .collect();
    let total: f64 = post.iter().sum();
    for p in &mut post {
        *p /= total;
    }
    post
}

/// A verbatim reimplementation of the historical dense-only accumulator
/// (a `Vec<f64>` over the whole universe, interleaved multiply-accumulate
/// fold) — the reference the sparse representation must match bit for
/// bit.
struct DenseRef {
    weights: Vec<f64>,
    folds: usize,
}

impl DenseRef {
    fn new(universe: usize) -> Self {
        DenseRef {
            weights: vec![1.0; universe],
            folds: 0,
        }
    }

    fn fold(&mut self, round: &[f64]) -> Result<(), ()> {
        if round.len() != self.weights.len() {
            return Err(());
        }
        if round.iter().any(|p| !p.is_finite() || *p < 0.0) {
            return Err(());
        }
        if self.folds == 0 {
            self.weights.copy_from_slice(round);
        } else {
            let mut total = 0.0;
            for (w, &p) in self.weights.iter_mut().zip(round) {
                *w *= p;
                total += *w;
            }
            if total <= 0.0 {
                return Err(());
            }
            for w in &mut self.weights {
                *w /= total;
            }
        }
        self.folds += 1;
        Ok(())
    }

    fn posterior(&self) -> Vec<f64> {
        if self.folds == 0 {
            return vec![1.0 / self.weights.len() as f64; self.weights.len()];
        }
        self.weights.clone()
    }

    fn entropy_bits(&self) -> f64 {
        if self.folds == 0 {
            return (self.weights.len() as f64).log2();
        }
        entropy_bits(&self.weights)
    }

    fn support(&self) -> usize {
        if self.folds == 0 {
            return self.weights.len();
        }
        self.weights.iter().filter(|&&w| w > 0.0).count()
    }

    fn best_guess(&self) -> (usize, f64) {
        let total: f64 = self.weights.iter().sum();
        self.weights
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, &w)| (i, w / total))
            .expect("nonempty")
    }
}

/// Like [`posterior_from`] but with a byte-threshold kill rule, so a high
/// `threshold` zeroes almost the whole universe (candidate 0 always
/// survives).
fn thresholded_posterior(raw: &[f64], keep: &[u8], threshold: u8, n: usize) -> Vec<f64> {
    let mut post: Vec<f64> = (0..n)
        .map(|i| {
            let w = 0.01 + raw[i % raw.len()].abs().fract();
            if i != 0 && keep[i % keep.len()] < threshold {
                0.0
            } else {
                w
            }
        })
        .collect();
    let total: f64 = post.iter().sum();
    for p in &mut post {
        *p /= total;
    }
    post
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

/// Asserts every observable of the accumulator matches the dense
/// reference bit for bit.
fn assert_matches_reference(acc: &IntersectionPosterior, reference: &DenseRef) {
    assert_eq!(bits(&acc.posterior()), bits(&reference.posterior()));
    assert_eq!(
        acc.entropy_bits().to_bits(),
        reference.entropy_bits().to_bits()
    );
    assert_eq!(acc.support(), reference.support());
    let (gi, gp) = acc.best_guess();
    let (ri, rp) = reference.best_guess();
    assert_eq!(gi, ri);
    assert_eq!(gp.to_bits(), rp.to_bits());
}

#[test]
fn sparse_switchover_is_transparent_and_rejects_contradictions_like_dense() {
    let n = 40;
    let mut acc = IntersectionPosterior::new(n);
    let mut reference = DenseRef::new(n);
    // a mild first round keeps 3n/4 of the support: stays dense
    let mild: Vec<u8> = (0..n as u8)
        .map(|i| if i % 4 == 1 { 0 } else { 255 })
        .collect();
    let raw: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
    let round = thresholded_posterior(&raw, &mild, 128, n);
    acc.fold(&round).unwrap();
    reference.fold(&round).unwrap();
    assert!(!acc.is_sparse(), "3n/4 support must stay dense");
    assert_matches_reference(&acc, &reference);
    // a heavy round collapses to <= n/4 survivors: switches to sparse
    let heavy: Vec<u8> = (0..n as u8)
        .map(|i| if i % 8 == 0 { 255 } else { 0 })
        .collect();
    let round = thresholded_posterior(&raw, &heavy, 128, n);
    acc.fold(&round).unwrap();
    reference.fold(&round).unwrap();
    assert!(acc.is_sparse(), "collapsed support must go sparse");
    assert_matches_reference(&acc, &reference);
    // folding from the sparse side still matches
    let round = thresholded_posterior(&raw[3..], &mild, 128, n);
    acc.fold(&round).unwrap();
    reference.fold(&round).unwrap();
    assert_matches_reference(&acc, &reference);
    // a contradictory round (mass only where the support is gone) errors
    // in both representations
    let mut contradiction = vec![0.0; n];
    for (i, slot) in contradiction.iter_mut().enumerate() {
        if i % 8 != 0 && i != 0 {
            *slot = 1.0;
        }
    }
    // survivors are exactly {0, multiples of 8} after the heavy round
    contradiction[0] = 0.0;
    assert!(acc.fold(&contradiction).is_err());
    assert!(reference.fold(&contradiction).is_err());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sparse_and_dense_accumulators_agree_bit_for_bit(
        raw in proptest::collection::vec(0.0f64..1.0, 24..=96),
        keep in proptest::collection::vec(any::<u8>(), 24..=96),
        thresholds in proptest::collection::vec(0u8..=250, 1..8),
    ) {
        let n = 64;
        let mut acc = IntersectionPosterior::new(n);
        let mut reference = DenseRef::new(n);
        // force the sparse regime up front: a heavy opening round zeroes
        // most of the universe, so every later fold runs sparse-vs-dense
        let opener = thresholded_posterior(&raw, &keep, 240, n);
        acc.fold(&opener).unwrap();
        reference.fold(&opener).unwrap();
        for (r, &threshold) in thresholds.iter().enumerate() {
            let round = thresholded_posterior(
                &raw[(r * 7) % raw.len()..],
                &keep[(r * 11) % keep.len()..],
                threshold,
                n,
            );
            // candidate 0 survives every round, so folds cannot go extinct
            acc.fold(&round).unwrap();
            reference.fold(&round).unwrap();
            prop_assert_eq!(bits(&acc.posterior()), bits(&reference.posterior()));
            prop_assert_eq!(
                acc.entropy_bits().to_bits(),
                reference.entropy_bits().to_bits()
            );
            prop_assert_eq!(acc.support(), reference.support());
            let (gi, gp) = acc.best_guess();
            let (ri, rp) = reference.best_guess();
            prop_assert_eq!(gi, ri);
            prop_assert_eq!(gp.to_bits(), rp.to_bits());
            prop_assert_eq!(acc.folds(), reference.folds);
        }
    }

    #[test]
    fn accumulator_stays_normalized_and_support_never_grows(
        raw in proptest::collection::vec(0.0f64..1.0, 9..=54),
        kill in proptest::collection::vec(any::<bool>(), 9..=54),
        round_count in 1usize..7,
    ) {
        let n = 9;
        let rounds: Vec<Vec<f64>> = (0..round_count)
            .map(|r| posterior_from(&raw[(r * 3) % raw.len()..], &kill[(r * 5) % kill.len()..], n))
            .collect();
        let mut acc = IntersectionPosterior::new(n);
        let mut prev_support = acc.support();
        prop_assert_eq!(prev_support, n);
        for round in &rounds {
            acc.fold(round).unwrap();
            let post = acc.posterior();
            let total: f64 = post.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-9, "sum {}", total);
            prop_assert!(post.iter().all(|&p| (0.0..=1.0 + 1e-12).contains(&p)));
            // the intersection attack proper: support is monotone
            let support = acc.support();
            prop_assert!(support <= prev_support, "{} > {}", support, prev_support);
            prev_support = support;
            // entropy is bounded by the surviving anonymity-set size
            prop_assert!(acc.entropy_bits() <= (support as f64).log2() + 1e-9);
        }
        prop_assert_eq!(acc.folds(), rounds.len());
    }

    #[test]
    fn single_epoch_fold_is_bit_identical_to_the_one_shot_posterior(
        n in 5usize..10,
        comp in 0usize..5,
        path_seed in any::<u64>(),
    ) {
        // generate a real observation posterior through the one-shot
        // path, fold it once, and demand the identical bits back
        prop_assume!(comp < n);
        let model = SystemModel::new(n, 1).unwrap();
        let dist = PathLengthDist::uniform(1, 2).unwrap();
        let compromised: Vec<bool> = (0..n).map(|i| i == n - 1).collect();
        let sender = (path_seed as usize) % (n - 1); // honest sender
        let mid = comp % (n - 1);
        let path = if mid == sender { vec![n - 1] } else { vec![mid] };
        let obs = observe(sender, &path, &compromised);
        let one_shot = sender_posterior(&model, &dist, &obs, &compromised).unwrap();
        let mut acc = IntersectionPosterior::new(n);
        acc.fold(&one_shot).unwrap();
        prop_assert_eq!(acc.posterior(), one_shot.clone());
        // bitwise, not approximately: the one-shot pipeline and a
        // single-epoch dynamics run must render identical artifacts
        let direct = entropy_bits(&one_shot);
        prop_assert!(acc.entropy_bits().to_bits() == direct.to_bits());
    }

    #[test]
    fn refolding_the_same_evidence_never_increases_entropy(
        raw in proptest::collection::vec(0.0f64..1.0, 8),
        kill in proptest::collection::vec(any::<bool>(), 8),
        repeats in 1usize..5,
    ) {
        let post = posterior_from(&raw, &kill, 8);
        let mut acc = IntersectionPosterior::new(8);
        acc.fold(&post).unwrap();
        let mut prev = acc.entropy_bits();
        for _ in 0..repeats {
            acc.fold(&post).unwrap();
            let h = acc.entropy_bits();
            prop_assert!(h <= prev + 1e-12, "entropy rose {} -> {}", prev, h);
            prev = h;
        }
    }

    #[test]
    fn schedules_realize_deterministically_with_anchored_first_epochs(
        n in 6usize..20,
        c in 1usize..3,
        epochs in 1usize..6,
        rotation in 0usize..3,
        churn_millis in 0usize..500,
        seed in any::<u64>(),
    ) {
        prop_assume!(c + 2 <= n);
        let schedule = EpochSchedule {
            epochs,
            rotation: match rotation {
                0 => RotationPolicy::Static,
                1 => RotationPolicy::Shift { step: 1 + rotation },
                _ => RotationPolicy::Resample,
            },
            churn: if churn_millis == 0 {
                ChurnModel::None
            } else {
                ChurnModel::Iid { rate: churn_millis as f64 / 1000.0 }
            },
        };
        let Ok(views) = schedule.realize(n, c, seed) else {
            // brutal churn on a small system may legitimately refuse
            return Ok(());
        };
        prop_assert_eq!(views.len(), epochs);
        // epoch 1 is always the one-shot anchor
        prop_assert_eq!(views[0].active.len(), n);
        prop_assert_eq!(views[0].compromised.clone(), (n - c..n).collect::<Vec<_>>());
        for view in &views {
            prop_assert!(view.active.len() >= c + 2);
            prop_assert_eq!(view.compromised.len(), c);
            prop_assert!(view.compromised.iter().all(|&u| view.is_active(u)));
            prop_assert!(view.active.windows(2).all(|w| w[0] < w[1]), "sorted");
        }
        // bit-identical determinism
        prop_assert_eq!(views, schedule.realize(n, c, seed).unwrap());
    }

    #[test]
    fn sampled_decay_curves_shrink_entropy_within_noise(
        epochs in 2usize..5,
        rotation in 0usize..3,
        seed in any::<u64>(),
    ) {
        // mean cumulative entropy is non-increasing in expectation;
        // sampled curves must respect that within standard error
        let model = SystemModel::new(12, 1).unwrap();
        let dist = PathLengthDist::uniform(1, 3).unwrap();
        let schedule = EpochSchedule {
            epochs,
            rotation: match rotation {
                0 => RotationPolicy::Static,
                1 => RotationPolicy::Shift { step: 2 },
                _ => RotationPolicy::Resample,
            },
            churn: ChurnModel::None,
        };
        let curve = estimate_decay(&model, &dist, &schedule, 400, seed, 0).unwrap();
        prop_assert_eq!(curve.per_epoch.len(), epochs);
        for w in curve.per_epoch.windows(2) {
            let slack = 3.0 * (w[0].std_error + w[1].std_error);
            prop_assert!(
                w[1].mean_entropy_bits <= w[0].mean_entropy_bits + slack,
                "entropy rose beyond noise: {:?} -> {:?}",
                w[0],
                w[1]
            );
            // support shrinks per session, so its mean is strictly monotone
            prop_assert!(w[1].mean_support <= w[0].mean_support + 1e-9);
        }
    }
}
