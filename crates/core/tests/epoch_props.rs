//! Property-based tests (vendored proptest) for the multi-round
//! dynamics layer: the `IntersectionPosterior` accumulator's invariants,
//! the schedule realizer's determinism, and the sampled decay curve's
//! statistical behavior.
//!
//! The accumulator invariants pinned here:
//!
//! * the cumulative posterior always stays normalized;
//! * a single folded epoch is **bit-identical** to the one-shot
//!   posterior path (no renormalization noise);
//! * the support never grows as epochs fold in (the intersection attack
//!   proper: a candidate excluded once stays excluded);
//! * re-folding the same evidence never increases entropy (escort
//!   sharpening), the per-realization half of the "entropy decays"
//!   claim — the full claim holds in expectation over sessions
//!   (conditioning reduces entropy) and is asserted on sampled decay
//!   curves with a standard-error tolerance.

use anonroute_core::engine::{observe, sender_posterior};
use anonroute_core::epochs::{
    estimate_decay, ChurnModel, EpochSchedule, IntersectionPosterior, RotationPolicy,
};
use anonroute_core::mathutil::entropy_bits;
use anonroute_core::{PathLengthDist, SystemModel};
use proptest::prelude::*;

/// Builds a normalized posterior over `n` candidates from raw weights
/// and a kill mask (observation-excluded candidates), always keeping
/// candidate 0 alive so folded sequences never go extinct.
fn posterior_from(raw: &[f64], kill: &[bool], n: usize) -> Vec<f64> {
    let mut post: Vec<f64> = (0..n)
        .map(|i| {
            let w = 0.01 + raw[i % raw.len()].abs().fract();
            if i != 0 && kill[i % kill.len()] {
                0.0
            } else {
                w
            }
        })
        .collect();
    let total: f64 = post.iter().sum();
    for p in &mut post {
        *p /= total;
    }
    post
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn accumulator_stays_normalized_and_support_never_grows(
        raw in proptest::collection::vec(0.0f64..1.0, 9..=54),
        kill in proptest::collection::vec(any::<bool>(), 9..=54),
        round_count in 1usize..7,
    ) {
        let n = 9;
        let rounds: Vec<Vec<f64>> = (0..round_count)
            .map(|r| posterior_from(&raw[(r * 3) % raw.len()..], &kill[(r * 5) % kill.len()..], n))
            .collect();
        let mut acc = IntersectionPosterior::new(n);
        let mut prev_support = acc.support();
        prop_assert_eq!(prev_support, n);
        for round in &rounds {
            acc.fold(round).unwrap();
            let post = acc.posterior();
            let total: f64 = post.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-9, "sum {}", total);
            prop_assert!(post.iter().all(|&p| (0.0..=1.0 + 1e-12).contains(&p)));
            // the intersection attack proper: support is monotone
            let support = acc.support();
            prop_assert!(support <= prev_support, "{} > {}", support, prev_support);
            prev_support = support;
            // entropy is bounded by the surviving anonymity-set size
            prop_assert!(acc.entropy_bits() <= (support as f64).log2() + 1e-9);
        }
        prop_assert_eq!(acc.folds(), rounds.len());
    }

    #[test]
    fn single_epoch_fold_is_bit_identical_to_the_one_shot_posterior(
        n in 5usize..10,
        comp in 0usize..5,
        path_seed in any::<u64>(),
    ) {
        // generate a real observation posterior through the one-shot
        // path, fold it once, and demand the identical bits back
        prop_assume!(comp < n);
        let model = SystemModel::new(n, 1).unwrap();
        let dist = PathLengthDist::uniform(1, 2).unwrap();
        let compromised: Vec<bool> = (0..n).map(|i| i == n - 1).collect();
        let sender = (path_seed as usize) % (n - 1); // honest sender
        let mid = comp % (n - 1);
        let path = if mid == sender { vec![n - 1] } else { vec![mid] };
        let obs = observe(sender, &path, &compromised);
        let one_shot = sender_posterior(&model, &dist, &obs, &compromised).unwrap();
        let mut acc = IntersectionPosterior::new(n);
        acc.fold(&one_shot).unwrap();
        prop_assert_eq!(acc.posterior(), one_shot.clone());
        // bitwise, not approximately: the one-shot pipeline and a
        // single-epoch dynamics run must render identical artifacts
        let direct = entropy_bits(&one_shot);
        prop_assert!(acc.entropy_bits().to_bits() == direct.to_bits());
    }

    #[test]
    fn refolding_the_same_evidence_never_increases_entropy(
        raw in proptest::collection::vec(0.0f64..1.0, 8),
        kill in proptest::collection::vec(any::<bool>(), 8),
        repeats in 1usize..5,
    ) {
        let post = posterior_from(&raw, &kill, 8);
        let mut acc = IntersectionPosterior::new(8);
        acc.fold(&post).unwrap();
        let mut prev = acc.entropy_bits();
        for _ in 0..repeats {
            acc.fold(&post).unwrap();
            let h = acc.entropy_bits();
            prop_assert!(h <= prev + 1e-12, "entropy rose {} -> {}", prev, h);
            prev = h;
        }
    }

    #[test]
    fn schedules_realize_deterministically_with_anchored_first_epochs(
        n in 6usize..20,
        c in 1usize..3,
        epochs in 1usize..6,
        rotation in 0usize..3,
        churn_millis in 0usize..500,
        seed in any::<u64>(),
    ) {
        prop_assume!(c + 2 <= n);
        let schedule = EpochSchedule {
            epochs,
            rotation: match rotation {
                0 => RotationPolicy::Static,
                1 => RotationPolicy::Shift { step: 1 + rotation },
                _ => RotationPolicy::Resample,
            },
            churn: if churn_millis == 0 {
                ChurnModel::None
            } else {
                ChurnModel::Iid { rate: churn_millis as f64 / 1000.0 }
            },
        };
        let Ok(views) = schedule.realize(n, c, seed) else {
            // brutal churn on a small system may legitimately refuse
            return Ok(());
        };
        prop_assert_eq!(views.len(), epochs);
        // epoch 1 is always the one-shot anchor
        prop_assert_eq!(views[0].active.len(), n);
        prop_assert_eq!(views[0].compromised.clone(), (n - c..n).collect::<Vec<_>>());
        for view in &views {
            prop_assert!(view.active.len() >= c + 2);
            prop_assert_eq!(view.compromised.len(), c);
            prop_assert!(view.compromised.iter().all(|&u| view.is_active(u)));
            prop_assert!(view.active.windows(2).all(|w| w[0] < w[1]), "sorted");
        }
        // bit-identical determinism
        prop_assert_eq!(views, schedule.realize(n, c, seed).unwrap());
    }

    #[test]
    fn sampled_decay_curves_shrink_entropy_within_noise(
        epochs in 2usize..5,
        rotation in 0usize..3,
        seed in any::<u64>(),
    ) {
        // mean cumulative entropy is non-increasing in expectation;
        // sampled curves must respect that within standard error
        let model = SystemModel::new(12, 1).unwrap();
        let dist = PathLengthDist::uniform(1, 3).unwrap();
        let schedule = EpochSchedule {
            epochs,
            rotation: match rotation {
                0 => RotationPolicy::Static,
                1 => RotationPolicy::Shift { step: 2 },
                _ => RotationPolicy::Resample,
            },
            churn: ChurnModel::None,
        };
        let curve = estimate_decay(&model, &dist, &schedule, 400, seed, 0).unwrap();
        prop_assert_eq!(curve.per_epoch.len(), epochs);
        for w in curve.per_epoch.windows(2) {
            let slack = 3.0 * (w[0].std_error + w[1].std_error);
            prop_assert!(
                w[1].mean_entropy_bits <= w[0].mean_entropy_bits + slack,
                "entropy rose beyond noise: {:?} -> {:?}",
                w[0],
                w[1]
            );
            // support shrinks per session, so its mean is strictly monotone
            prop_assert!(w[1].mean_support <= w[0].mean_support + 1e-9);
        }
    }
}
