//! # anonroute-core
//!
//! Exact analysis and optimization of route-selection strategies for
//! rerouting-based anonymous communication systems, reproducing
//! *"An Optimal Strategy for Anonymous Communication Protocols"*
//! (Guan, Fu, Bettati, Zhao — ICDCS 2002).
//!
//! A rerouting-based system (Crowds, Onion Routing, Freedom, PipeNet,
//! mix networks, …) hides the sender of a message by forwarding it through
//! `l` intermediate nodes. Against a passive adversary that has compromised
//! `c` of the `n` member nodes plus the receiver, the system's protection is
//! measured by the **anonymity degree** `H*(S)`: the expected Shannon
//! entropy of the adversary's posterior over possible senders.
//!
//! This crate provides:
//!
//! * [`SystemModel`] / [`PathLengthDist`] — the clique system model and the
//!   path-length distributions that define a strategy;
//! * [`engine`] — exact closed-form computation of `H*(S)` for any `c`,
//!   both for simple and cyclic paths, per-event Bayesian posteriors, a
//!   Monte-Carlo estimator, and a brute-force validator;
//! * [`analytic`] — the paper's Theorems 1–3 as standalone closed forms;
//! * [`optimize`] — the paper's optimization problem (eqs. 15–17): find the
//!   path-length distribution maximizing `H*(S)`, optionally at a fixed
//!   expected path length (Figure 6);
//! * [`strategies`] — presets for the systems surveyed in Section 2.
//!
//! ## Quickstart
//!
//! ```
//! use anonroute_core::{engine, PathLengthDist, SystemModel};
//!
//! // 100 nodes, one compromised — the paper's evaluation setting.
//! let model = SystemModel::new(100, 1)?;
//!
//! // How anonymous is Onion Routing I's fixed five-hop strategy?
//! let onion = PathLengthDist::fixed(5);
//! let h = engine::anonymity_degree(&model, &onion)?;
//! assert!(h > 6.5 && h < 100f64.log2());
//! # Ok::<(), anonroute_core::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytic;
pub mod dist;
pub mod engine;
pub mod epochs;
pub mod error;
pub mod kernels;
pub mod mathutil;
pub mod metrics;
pub mod model;
pub mod optimize;
pub mod strategies;

pub use dist::PathLengthDist;
pub use epochs::{ChurnModel, EpochSchedule, IntersectionPosterior, RotationPolicy};
pub use error::{Error, Result};
pub use metrics::{AnonymityReport, SampledDegree};
pub use model::{PathKind, SystemModel};
