//! Aggregate anonymity metrics for evaluating and comparing strategies.

use crate::dist::PathLengthDist;
use crate::engine;
use crate::error::Result;
use crate::model::SystemModel;

/// A one-stop evaluation of a route-selection strategy against a system
/// model: the paper's anonymity degree plus the auxiliary quantities used
/// throughout its evaluation section.
///
/// # Examples
///
/// ```
/// use anonroute_core::{AnonymityReport, PathLengthDist, SystemModel};
///
/// let model = SystemModel::new(100, 1)?;
/// let report = AnonymityReport::evaluate(&model, &PathLengthDist::fixed(5))?;
/// assert!(report.h_star > 6.4);
/// assert!(report.normalized < 1.0);
/// assert_eq!(report.expected_path_length, 5.0);
/// # Ok::<(), anonroute_core::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AnonymityReport {
    /// The anonymity degree `H*(S)` in bits (eq. 5 of the paper).
    pub h_star: f64,
    /// `H*(S) / log2(n)` — fraction of the ideal anonymity achieved.
    pub normalized: f64,
    /// Probability that the adversary identifies the sender outright.
    pub p_exposed: f64,
    /// Expected number of intermediate nodes — the latency/traffic
    /// overhead the strategy pays for its anonymity.
    pub expected_path_length: f64,
}

impl AnonymityReport {
    /// Evaluates `dist` under `model` using the exact engine for the
    /// model's path kind.
    ///
    /// # Errors
    ///
    /// Propagates engine validation errors.
    pub fn evaluate(model: &SystemModel, dist: &PathLengthDist) -> Result<Self> {
        let analysis = engine::analysis(model, dist)?;
        Ok(AnonymityReport {
            h_star: analysis.h_star,
            normalized: analysis.normalized(model),
            p_exposed: analysis.p_exposed,
            expected_path_length: dist.mean(),
        })
    }

    /// Anonymity gained per unit of rerouting overhead, in bits per
    /// expected hop. Degenerates to `h_star` for direct sending.
    pub fn efficiency(&self) -> f64 {
        if self.expected_path_length <= 0.0 {
            self.h_star
        } else {
            self.h_star / self.expected_path_length
        }
    }
}

/// A sampled estimate of an anonymity degree — the common shape of every
/// statistical measurement in the workspace (the core Monte-Carlo
/// estimator, the simulated-protocol attack, and live TCP cluster
/// measurements all reduce to one of these).
///
/// # Examples
///
/// ```
/// use anonroute_core::SampledDegree;
///
/// let est = SampledDegree { h_star: 4.31, std_error: 0.02, samples: 1000 };
/// let (lo, hi) = est.ci95();
/// assert!(lo < est.h_star && est.h_star < hi);
/// assert!(est.agrees_with(4.35, 4.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampledDegree {
    /// Estimated anonymity degree in bits.
    pub h_star: f64,
    /// Standard error of the estimate.
    pub std_error: f64,
    /// Number of independent samples behind the estimate.
    pub samples: usize,
}

impl SampledDegree {
    /// Two-sided 95% confidence interval.
    pub fn ci95(&self) -> (f64, f64) {
        (
            self.h_star - 1.96 * self.std_error,
            self.h_star + 1.96 * self.std_error,
        )
    }

    /// Whether the estimate is within `sigmas` standard errors of a
    /// reference value (with a small absolute epsilon so exact agreement
    /// at zero variance still passes).
    pub fn agrees_with(&self, reference: f64, sigmas: f64) -> bool {
        (self.h_star - reference).abs() <= sigmas * self.std_error + 1e-9
    }
}

impl std::fmt::Display for SampledDegree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.4} bits (se {:.4}, {} samples)",
            self.h_star, self.std_error, self.samples
        )
    }
}

impl std::fmt::Display for AnonymityReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "H*={:.4} bits ({:.1}% of ideal), P[exposed]={:.4}, E[len]={:.2}",
            self.h_star,
            self.normalized * 100.0,
            self.p_exposed,
            self.expected_path_length
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_fields_are_consistent() {
        let model = SystemModel::new(50, 2).unwrap();
        let dist = PathLengthDist::uniform(2, 8).unwrap();
        let r = AnonymityReport::evaluate(&model, &dist).unwrap();
        assert!((r.normalized - r.h_star / 50f64.log2()).abs() < 1e-12);
        assert!((r.expected_path_length - 5.0).abs() < 1e-12);
        assert!(r.p_exposed >= 2.0 / 50.0 - 1e-12); // at least the compromised-sender mass
        assert!(r.efficiency() > 0.0);
    }

    #[test]
    fn efficiency_of_direct_send_is_h_star() {
        let model = SystemModel::new(50, 0).unwrap();
        let r = AnonymityReport::evaluate(&model, &PathLengthDist::fixed(0)).unwrap();
        assert_eq!(r.efficiency(), r.h_star);
    }

    #[test]
    fn sampled_degree_interval_and_agreement() {
        let est = SampledDegree {
            h_star: 5.0,
            std_error: 0.1,
            samples: 400,
        };
        let (lo, hi) = est.ci95();
        assert!((lo - 4.804).abs() < 1e-12 && (hi - 5.196).abs() < 1e-12);
        assert!(est.agrees_with(5.3, 4.0));
        assert!(!est.agrees_with(5.5, 4.0));
        // zero variance: only (near-)exact agreement passes
        let exact = SampledDegree {
            h_star: 5.0,
            std_error: 0.0,
            samples: 1,
        };
        assert!(exact.agrees_with(5.0, 4.0));
        assert!(!exact.agrees_with(5.1, 4.0));
        assert!(exact.to_string().contains("1 samples"));
    }

    #[test]
    fn display_mentions_key_quantities() {
        let model = SystemModel::new(50, 1).unwrap();
        let r = AnonymityReport::evaluate(&model, &PathLengthDist::fixed(3)).unwrap();
        let s = r.to_string();
        assert!(s.contains("H*=") && s.contains("E[len]="));
    }
}
