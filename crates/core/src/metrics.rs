//! Aggregate anonymity metrics for evaluating and comparing strategies.

use crate::dist::PathLengthDist;
use crate::engine;
use crate::error::Result;
use crate::model::SystemModel;

/// A one-stop evaluation of a route-selection strategy against a system
/// model: the paper's anonymity degree plus the auxiliary quantities used
/// throughout its evaluation section.
///
/// # Examples
///
/// ```
/// use anonroute_core::{AnonymityReport, PathLengthDist, SystemModel};
///
/// let model = SystemModel::new(100, 1)?;
/// let report = AnonymityReport::evaluate(&model, &PathLengthDist::fixed(5))?;
/// assert!(report.h_star > 6.4);
/// assert!(report.normalized < 1.0);
/// assert_eq!(report.expected_path_length, 5.0);
/// # Ok::<(), anonroute_core::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AnonymityReport {
    /// The anonymity degree `H*(S)` in bits (eq. 5 of the paper).
    pub h_star: f64,
    /// `H*(S) / log2(n)` — fraction of the ideal anonymity achieved.
    pub normalized: f64,
    /// Probability that the adversary identifies the sender outright.
    pub p_exposed: f64,
    /// Expected number of intermediate nodes — the latency/traffic
    /// overhead the strategy pays for its anonymity.
    pub expected_path_length: f64,
}

impl AnonymityReport {
    /// Evaluates `dist` under `model` using the exact engine for the
    /// model's path kind.
    ///
    /// # Errors
    ///
    /// Propagates engine validation errors.
    pub fn evaluate(model: &SystemModel, dist: &PathLengthDist) -> Result<Self> {
        let analysis = engine::analysis(model, dist)?;
        Ok(AnonymityReport {
            h_star: analysis.h_star,
            normalized: analysis.normalized(model),
            p_exposed: analysis.p_exposed,
            expected_path_length: dist.mean(),
        })
    }

    /// Anonymity gained per unit of rerouting overhead, in bits per
    /// expected hop. Degenerates to `h_star` for direct sending.
    pub fn efficiency(&self) -> f64 {
        if self.expected_path_length <= 0.0 {
            self.h_star
        } else {
            self.h_star / self.expected_path_length
        }
    }
}

impl std::fmt::Display for AnonymityReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "H*={:.4} bits ({:.1}% of ideal), P[exposed]={:.4}, E[len]={:.2}",
            self.h_star,
            self.normalized * 100.0,
            self.p_exposed,
            self.expected_path_length
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_fields_are_consistent() {
        let model = SystemModel::new(50, 2).unwrap();
        let dist = PathLengthDist::uniform(2, 8).unwrap();
        let r = AnonymityReport::evaluate(&model, &dist).unwrap();
        assert!((r.normalized - r.h_star / 50f64.log2()).abs() < 1e-12);
        assert!((r.expected_path_length - 5.0).abs() < 1e-12);
        assert!(r.p_exposed >= 2.0 / 50.0 - 1e-12); // at least the compromised-sender mass
        assert!(r.efficiency() > 0.0);
    }

    #[test]
    fn efficiency_of_direct_send_is_h_star() {
        let model = SystemModel::new(50, 0).unwrap();
        let r = AnonymityReport::evaluate(&model, &PathLengthDist::fixed(0)).unwrap();
        assert_eq!(r.efficiency(), r.h_star);
    }

    #[test]
    fn display_mentions_key_quantities() {
        let model = SystemModel::new(50, 1).unwrap();
        let r = AnonymityReport::evaluate(&model, &PathLengthDist::fixed(3)).unwrap();
        let s = r.to_string();
        assert!(s.contains("H*=") && s.contains("E[len]="));
    }
}
