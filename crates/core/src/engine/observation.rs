//! The adversary's view of a single message (Section 4 of the paper).
//!
//! Every compromised node on a rerouting path reports the tuple
//! `(time, predecessor, successor)`; compromised nodes off the path
//! implicitly report silence; the (always compromised) receiver reports its
//! immediate predecessor. Sorting the tuples by time and merging adjacent
//! reports yields the [`Observation`] structure below: maximal *runs* of
//! compromised nodes, each with the honest neighbours that delivered and
//! received the message, in path order.

/// Identifier of a member node, in `0..n`.
pub type NodeId = usize;

/// Where a run of compromised nodes forwarded the message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Succ {
    /// Forwarded to another member node (observed by identity).
    Node(NodeId),
    /// Delivered to the receiver.
    Receiver,
}

/// One maximal run of consecutive compromised nodes on the path, in time
/// order.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RunObservation {
    /// The compromised nodes of the run, in path order.
    pub nodes: Vec<NodeId>,
    /// The node that handed the message to the first node of the run.
    /// This may be the sender — the adversary cannot tell.
    pub pred: NodeId,
    /// Where the last node of the run forwarded the message.
    pub succ: Succ,
}

impl RunObservation {
    /// Number of compromised nodes in the run.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the run is empty (never true for observations produced by
    /// [`observe`]).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// Everything the adversary learns about one message.
///
/// Instances are produced by [`observe`] (or by the `anonroute-adversary`
/// crate from raw simulator taps) and consumed by
/// [`sender_posterior`](crate::engine::sender_posterior).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Observation {
    /// `Some(s)` if a compromised agent watched the message *originate*
    /// (i.e. the sender itself is compromised — the paper's "local
    /// eavesdropper" case).
    pub origin: Option<NodeId>,
    /// Time-ordered maximal runs of compromised nodes on the path.
    pub runs: Vec<RunObservation>,
    /// The receiver's immediate predecessor (the receiver is always
    /// compromised). Equal to the sender when the path length is zero.
    pub receiver_pred: NodeId,
}

impl Observation {
    /// Total number of compromised sightings on the path (sum of run
    /// lengths; counts repeat visits separately on cyclic paths).
    pub fn compromised_sightings(&self) -> usize {
        self.runs.iter().map(RunObservation::len).sum()
    }
}

/// Simulates the adversary's collection procedure for one message.
///
/// `path` holds the intermediate nodes in order (`path.len()` is the path
/// length `l`; it may be empty). `compromised[i]` tells whether member `i`
/// is compromised; its length must be at least every node id used.
///
/// This function is the *generative* counterpart of the analysis engines:
/// the brute-force validator, the Monte-Carlo estimator, and the
/// discrete-event simulator all funnel through it (or reproduce it bit for
/// bit), which is what ties the analytical results to the simulated system.
///
/// # Panics
///
/// Panics if a node id in `path` (or `sender`) is out of range of
/// `compromised`.
pub fn observe(sender: NodeId, path: &[NodeId], compromised: &[bool]) -> Observation {
    let origin = compromised[sender].then_some(sender);
    let receiver_pred = path.last().copied().unwrap_or(sender);
    let mut runs = Vec::new();
    let mut current: Option<RunObservation> = None;
    for (k, &node) in path.iter().enumerate() {
        if compromised[node] {
            let pred = if k == 0 { sender } else { path[k - 1] };
            match current.as_mut() {
                Some(run) => run.nodes.push(node),
                None => {
                    current = Some(RunObservation {
                        nodes: vec![node],
                        pred,
                        succ: Succ::Receiver,
                    });
                }
            }
        } else if let Some(mut run) = current.take() {
            run.succ = Succ::Node(node);
            runs.push(run);
        }
    }
    if let Some(run) = current.take() {
        // the run reaches the end of the path: forwarded to the receiver
        runs.push(run);
    }
    Observation {
        origin,
        runs,
        receiver_pred,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comp(n: usize, ids: &[usize]) -> Vec<bool> {
        let mut v = vec![false; n];
        for &i in ids {
            v[i] = true;
        }
        v
    }

    #[test]
    fn clean_path_reports_only_receiver_pred() {
        let obs = observe(0, &[1, 2, 3], &comp(6, &[5]));
        assert_eq!(obs.origin, None);
        assert!(obs.runs.is_empty());
        assert_eq!(obs.receiver_pred, 3);
    }

    #[test]
    fn zero_length_path_exposes_sender_to_receiver() {
        let obs = observe(4, &[], &comp(6, &[1]));
        assert_eq!(obs.receiver_pred, 4);
        assert!(obs.runs.is_empty());
    }

    #[test]
    fn compromised_sender_is_origin() {
        let obs = observe(1, &[2, 3], &comp(6, &[1]));
        assert_eq!(obs.origin, Some(1));
    }

    #[test]
    fn single_compromised_first_hop_sees_sender() {
        let obs = observe(0, &[5, 2, 3], &comp(6, &[5]));
        assert_eq!(obs.runs.len(), 1);
        assert_eq!(obs.runs[0].nodes, vec![5]);
        assert_eq!(obs.runs[0].pred, 0); // this IS the sender, unbeknownst to the adversary
        assert_eq!(obs.runs[0].succ, Succ::Node(2));
    }

    #[test]
    fn run_touching_receiver() {
        let obs = observe(0, &[1, 2, 5], &comp(6, &[5]));
        assert_eq!(obs.runs[0].pred, 2);
        assert_eq!(obs.runs[0].succ, Succ::Receiver);
        assert_eq!(obs.receiver_pred, 5);
    }

    #[test]
    fn adjacent_compromised_nodes_merge_into_one_run() {
        let obs = observe(0, &[1, 4, 5, 2], &comp(6, &[4, 5]));
        assert_eq!(obs.runs.len(), 1);
        assert_eq!(obs.runs[0].nodes, vec![4, 5]);
        assert_eq!(obs.runs[0].pred, 1);
        assert_eq!(obs.runs[0].succ, Succ::Node(2));
    }

    #[test]
    fn separated_runs_are_kept_apart_in_order() {
        let obs = observe(0, &[4, 1, 2, 5, 3], &comp(6, &[4, 5]));
        assert_eq!(obs.runs.len(), 2);
        assert_eq!(obs.runs[0].nodes, vec![4]);
        assert_eq!(obs.runs[0].succ, Succ::Node(1));
        assert_eq!(obs.runs[1].nodes, vec![5]);
        assert_eq!(obs.runs[1].pred, 2);
        assert_eq!(obs.runs[1].succ, Succ::Node(3));
        assert_eq!(obs.compromised_sightings(), 2);
    }

    #[test]
    fn gap_of_one_shares_the_boundary_node() {
        let obs = observe(0, &[4, 1, 5], &comp(6, &[4, 5]));
        assert_eq!(obs.runs[0].succ, Succ::Node(1));
        assert_eq!(obs.runs[1].pred, 1);
        assert_eq!(obs.runs[1].succ, Succ::Receiver);
    }

    #[test]
    fn cyclic_path_revisits_create_separate_runs() {
        // node 4 appears twice with an honest node in between
        let obs = observe(0, &[4, 1, 4], &comp(6, &[4]));
        assert_eq!(obs.runs.len(), 2);
        assert_eq!(obs.runs[0].nodes, vec![4]);
        assert_eq!(obs.runs[1].nodes, vec![4]);
        assert_eq!(obs.compromised_sightings(), 2);
    }
}
