//! Anonymity-degree engines: exact closed forms, per-event Bayesian
//! posteriors, Monte-Carlo estimation, and a brute-force validator.
//!
//! The central quantity is the paper's *anonymity degree*
//! `H*(S) = Σ_E P(E) · H(P(sender | E))` (eq. 5): the expected Shannon
//! entropy of the adversary's posterior over senders. Use
//! [`anonymity_degree`] for the number, [`analysis`] for the per-class
//! decomposition, [`sender_posterior`] to attack a single observation, and
//! [`estimate_anonymity_degree`] for seeded Monte-Carlo estimates.

pub mod brute;
mod cache;
pub mod cyclic;
mod fold;
mod montecarlo;
mod observation;
mod posterior;
pub mod simple;

pub use cache::{CacheStats, EvaluatorCache, SharedEvaluator, SharedWorkspace};
pub use fold::FoldWorkspace;
pub use montecarlo::{
    estimate_anonymity_degree, sample_path, sample_path_into, MonteCarloEstimate,
};
pub use observation::{observe, NodeId, Observation, RunObservation, Succ};
pub use posterior::sender_posterior;
pub use simple::{AnonymityAnalysis, ClassReport, EndGap, Evaluator, ObservationClass};

use crate::dist::PathLengthDist;
use crate::error::Result;
use crate::model::{PathKind, SystemModel};

/// Computes the exact anonymity degree `H*(S)` in bits for the model's
/// path kind.
///
/// # Examples
///
/// ```
/// use anonroute_core::{engine, PathLengthDist, SystemModel};
///
/// let model = SystemModel::new(100, 1)?;
/// let h1 = engine::anonymity_degree(&model, &PathLengthDist::fixed(1))?;
/// let h2 = engine::anonymity_degree(&model, &PathLengthDist::fixed(2))?;
/// // the paper's short-path effect: lengths 1 and 2 are equally anonymous
/// assert!((h1 - h2).abs() < 1e-12);
/// # Ok::<(), anonroute_core::Error>(())
/// ```
///
/// # Errors
///
/// Returns an error when the distribution is incompatible with the model
/// (e.g. simple paths longer than `n - 1`).
pub fn anonymity_degree(model: &SystemModel, dist: &PathLengthDist) -> Result<f64> {
    match model.path_kind() {
        PathKind::Simple => simple::anonymity_degree(model, dist),
        PathKind::Cyclic => cyclic::anonymity_degree(model, dist),
    }
}

/// Computes the full observation-class decomposition of `H*(S)` for the
/// model's path kind.
///
/// # Errors
///
/// Same conditions as [`anonymity_degree`].
pub fn analysis(model: &SystemModel, dist: &PathLengthDist) -> Result<AnonymityAnalysis> {
    match model.path_kind() {
        PathKind::Simple => simple::analysis(model, dist),
        PathKind::Cyclic => cyclic::analysis(model, dist),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_respects_path_kind() {
        let dist = PathLengthDist::fixed(3);
        let simple_model = SystemModel::new(12, 2).unwrap();
        let cyclic_model = SystemModel::with_path_kind(12, 2, PathKind::Cyclic).unwrap();
        let hs = anonymity_degree(&simple_model, &dist).unwrap();
        let hc = anonymity_degree(&cyclic_model, &dist).unwrap();
        assert!((hs - hc).abs() > 1e-6, "kinds should differ: {hs} vs {hc}");
        assert!((analysis(&simple_model, &dist).unwrap().h_star - hs).abs() < 1e-15);
        assert!((analysis(&cyclic_model, &dist).unwrap().h_star - hc).abs() < 1e-15);
    }
}
