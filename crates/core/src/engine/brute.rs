//! Brute-force ground truth by exhaustive enumeration.
//!
//! This module computes the anonymity degree *directly from its definition*
//! (eqs. 3–5 of the paper): enumerate every (sender, length, path) outcome,
//! group outcomes by the exact observation they produce for the adversary,
//! and average the posterior entropies. Runtime is exponential — it exists
//! to validate the closed-form engines on tiny systems and is exercised
//! heavily by the test suite.

use std::collections::HashMap;

use crate::dist::PathLengthDist;
use crate::engine::observation::{observe, Observation};
use crate::error::Result;
use crate::mathutil::entropy_bits;
use crate::model::{PathKind, SystemModel};

/// Joint enumeration of all outcomes: maps each distinct observation to the
/// probability mass each sender contributes to it.
///
/// The compromised set is taken to be nodes `0..c` (node identities are
/// exchangeable, so this is without loss of generality).
pub fn enumerate_outcomes(
    model: &SystemModel,
    dist: &PathLengthDist,
) -> Result<HashMap<Observation, Vec<f64>>> {
    model.validate_dist(dist)?;
    let n = model.n();
    let c = model.c();
    let compromised: Vec<bool> = (0..n).map(|i| i < c).collect();
    let mut outcomes: HashMap<Observation, Vec<f64>> = HashMap::new();

    for sender in 0..n {
        for (l, &ql) in dist.pmf().iter().enumerate() {
            if ql == 0.0 {
                continue;
            }
            let mut paths: Vec<Vec<usize>> = Vec::new();
            match model.path_kind() {
                PathKind::Simple => {
                    let others: Vec<usize> = (0..n).filter(|&x| x != sender).collect();
                    let mut used = vec![false; others.len()];
                    let mut path = Vec::with_capacity(l);
                    permutations(&others, l, &mut used, &mut path, &mut paths);
                }
                PathKind::Cyclic => {
                    let mut path = Vec::with_capacity(l);
                    sequences(n, l, &mut path, &mut paths);
                }
            }
            let weight = ql / (n as f64 * paths.len() as f64);
            for path in &paths {
                let obs = observe(sender, path, &compromised);
                outcomes.entry(obs).or_insert_with(|| vec![0.0; n])[sender] += weight;
            }
        }
    }
    Ok(outcomes)
}

fn permutations(
    pool: &[usize],
    remaining: usize,
    used: &mut [bool],
    path: &mut Vec<usize>,
    out: &mut Vec<Vec<usize>>,
) {
    if remaining == 0 {
        out.push(path.clone());
        return;
    }
    for i in 0..pool.len() {
        if used[i] {
            continue;
        }
        used[i] = true;
        path.push(pool[i]);
        permutations(pool, remaining - 1, used, path, out);
        path.pop();
        used[i] = false;
    }
}

fn sequences(n: usize, remaining: usize, path: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
    if remaining == 0 {
        out.push(path.clone());
        return;
    }
    for v in 0..n {
        path.push(v);
        sequences(n, remaining - 1, path, out);
        path.pop();
    }
}

/// Anonymity degree computed straight from the definition. Exponential;
/// use only for tiny systems (roughly `n ≤ 8`, `lmax ≤ 4`).
///
/// # Errors
///
/// Propagates distribution-validation errors.
pub fn anonymity_degree_brute(model: &SystemModel, dist: &PathLengthDist) -> Result<f64> {
    let outcomes = enumerate_outcomes(model, dist)?;
    let mut h_star = 0.0;
    for masses in outcomes.values() {
        let p_event: f64 = masses.iter().sum();
        h_star += p_event * entropy_bits(masses);
    }
    Ok(h_star)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::posterior::sender_posterior;
    use crate::engine::simple;
    use crate::model::PathKind;

    fn dists_for(n: usize) -> Vec<PathLengthDist> {
        let lmax = (n - 1).min(4);
        vec![
            PathLengthDist::fixed(0),
            PathLengthDist::fixed(1),
            PathLengthDist::fixed(2.min(lmax)),
            PathLengthDist::fixed(lmax),
            PathLengthDist::uniform(0, lmax).unwrap(),
            PathLengthDist::uniform(1, lmax).unwrap(),
            PathLengthDist::two_point(1, 0.3, lmax).unwrap(),
            PathLengthDist::geometric(0.6, lmax).unwrap(),
        ]
    }

    #[test]
    fn brute_masses_are_a_probability_distribution() {
        let model = SystemModel::new(5, 2).unwrap();
        let dist = PathLengthDist::uniform(0, 3).unwrap();
        let outcomes = enumerate_outcomes(&model, &dist).unwrap();
        let total: f64 = outcomes.values().flat_map(|v| v.iter()).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn exact_simple_engine_matches_brute_force() {
        for n in [4usize, 5, 6] {
            for c in 0..=3.min(n) {
                let model = SystemModel::new(n, c).unwrap();
                for dist in dists_for(n) {
                    let brute = anonymity_degree_brute(&model, &dist).unwrap();
                    let exact = simple::anonymity_degree(&model, &dist).unwrap();
                    assert!(
                        (brute - exact).abs() < 1e-10,
                        "n={n} c={c} dist={dist}: brute={brute} exact={exact}"
                    );
                }
            }
        }
    }

    #[test]
    fn exact_simple_engine_matches_brute_force_larger_c() {
        // heavier compromise ratios, including adjacent-run classes
        let model = SystemModel::new(7, 4).unwrap();
        for dist in [
            PathLengthDist::fixed(4),
            PathLengthDist::uniform(2, 5).unwrap(),
            PathLengthDist::uniform(0, 6).unwrap(),
        ] {
            let brute = anonymity_degree_brute(&model, &dist).unwrap();
            let exact = simple::anonymity_degree(&model, &dist).unwrap();
            assert!(
                (brute - exact).abs() < 1e-10,
                "dist={dist}: brute={brute} exact={exact}"
            );
        }
    }

    #[test]
    fn posterior_matches_brute_force_on_every_observation() {
        for (n, c) in [(5usize, 1usize), (6, 2), (6, 3)] {
            let model = SystemModel::new(n, c).unwrap();
            let compromised: Vec<bool> = (0..n).map(|i| i < c).collect();
            for dist in [
                PathLengthDist::uniform(0, 3).unwrap(),
                PathLengthDist::uniform(1, 4.min(n - 1)).unwrap(),
                PathLengthDist::geometric(0.5, 4.min(n - 1)).unwrap(),
            ] {
                let outcomes = enumerate_outcomes(&model, &dist).unwrap();
                for (obs, masses) in &outcomes {
                    let z: f64 = masses.iter().sum();
                    let expected: Vec<f64> = masses.iter().map(|m| m / z).collect();
                    let got = sender_posterior(&model, &dist, obs, &compromised).unwrap();
                    for i in 0..n {
                        assert!(
                            (expected[i] - got[i]).abs() < 1e-10,
                            "n={n} c={c} dist={dist} obs={obs:?} node {i}: \
                             brute={} engine={}",
                            expected[i],
                            got[i]
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn cyclic_brute_force_runs_and_is_bounded() {
        let model = SystemModel::with_path_kind(5, 1, PathKind::Cyclic).unwrap();
        let dist = PathLengthDist::uniform(1, 3).unwrap();
        let h = anonymity_degree_brute(&model, &dist).unwrap();
        assert!(h > 0.0 && h <= 5f64.log2());
    }
}
