//! Shared, memoized [`Evaluator`] and [`FoldWorkspace`] handles for
//! multi-scenario sweeps.
//!
//! Building an [`Evaluator`] precomputes log-factorial tables for a
//! `(model, lmax)` pair; a parameter sweep evaluates many strategies
//! against the same handful of models, so paying that cost once per model
//! — and sharing the result across worker threads — is the difference
//! between `O(cells)` and `O(models)` table builds. The cache hands out
//! cheap-to-clone [`SharedEvaluator`] handles (`Arc`s) keyed by
//! `(n, c, path_kind, lmax)` and is safe to use concurrently.
//!
//! The same cache also memoizes [`FoldWorkspace`]s keyed by
//! `(model, path-length distribution)`, so multi-epoch estimators reuse
//! one workspace per epoch model instead of rebuilding per-session tables
//! (counted separately — see [`EvaluatorCache::workspace_stats`]).

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::dist::PathLengthDist;
use crate::engine::fold::FoldWorkspace;
use crate::engine::simple::Evaluator;
use crate::error::Result;
use crate::model::{PathKind, SystemModel};

/// A cheap-to-clone, thread-shareable handle to an exact [`Evaluator`].
pub type SharedEvaluator = Arc<Evaluator>;

/// A cheap-to-clone, thread-shareable handle to a [`FoldWorkspace`].
pub type SharedWorkspace = Arc<FoldWorkspace>;

/// One cache entry: present-but-empty while unbuilt, filled exactly once.
/// Builders hold the slot's own lock for the duration of the build, so
/// concurrent first lookups of one key dedupe (one builds, the rest wait)
/// without serializing unrelated keys behind the map lock.
type Slot<T> = Arc<Mutex<Option<Arc<T>>>>;

/// Evaluators are keyed by the model identity plus the table ceiling.
type EvaluatorKey = (usize, usize, PathKind, usize);

/// Workspaces are keyed by the model identity plus the exact pmf bits
/// (`PathLengthDist` trims trailing zeros, so the pmf determines
/// `max_len` too).
type WorkspaceKey = (usize, usize, PathKind, Vec<u64>);

/// Concurrency-safe memoization of [`Evaluator`] construction, keyed by
/// `(n, c, path_kind, lmax)`, with a secondary [`FoldWorkspace`] map.
///
/// # Examples
///
/// ```
/// use anonroute_core::engine::EvaluatorCache;
/// use anonroute_core::{PathLengthDist, SystemModel};
///
/// let cache = EvaluatorCache::new();
/// let model = SystemModel::new(100, 1)?;
/// let a = cache.evaluator(&model, 99)?;
/// let b = cache.evaluator(&model, 99)?; // same handle, no rebuild
/// assert_eq!(cache.stats().misses, 1);
/// assert_eq!(cache.stats().hits, 1);
/// let h = a.h_star(PathLengthDist::fixed(5).pmf());
/// assert!((h - b.h_star(PathLengthDist::fixed(5).pmf())).abs() == 0.0);
/// # Ok::<(), anonroute_core::Error>(())
/// ```
#[derive(Debug, Default)]
pub struct EvaluatorCache {
    map: Mutex<HashMap<EvaluatorKey, Slot<Evaluator>>>,
    workspaces: Mutex<HashMap<WorkspaceKey, Slot<FoldWorkspace>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    ws_hits: AtomicUsize,
    ws_misses: AtomicUsize,
}

/// Hit/miss counters of an [`EvaluatorCache`] map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: usize,
    /// Lookups that had to build a fresh entry.
    pub misses: usize,
}

/// Looks up `key`, building at most once per key across all threads.
///
/// The build runs under the key's own slot lock: concurrent first lookups
/// of the same key wait for the winner instead of duplicating the build,
/// while lookups of other keys proceed (the map lock is only held to
/// fetch the slot). A failed build removes the still-empty slot so the
/// error does not poison later lookups, and counts neither hit nor miss —
/// `misses` is exactly the number of successfully built entries,
/// deterministically, whatever the interleaving.
fn get_or_build<K, T, F>(
    map: &Mutex<HashMap<K, Slot<T>>>,
    hits: &AtomicUsize,
    misses: &AtomicUsize,
    key: K,
    build: F,
) -> Result<Arc<T>>
where
    K: Eq + Hash + Clone,
    F: FnOnce() -> Result<T>,
{
    let slot = Arc::clone(
        map.lock()
            .expect("cache lock")
            .entry(key.clone())
            .or_default(),
    );
    let mut guard = slot.lock().expect("cache slot lock");
    if let Some(found) = guard.as_ref() {
        hits.fetch_add(1, Ordering::Relaxed);
        return Ok(Arc::clone(found));
    }
    match build() {
        Ok(built) => {
            let shared = Arc::new(built);
            *guard = Some(Arc::clone(&shared));
            misses.fetch_add(1, Ordering::Relaxed);
            Ok(shared)
        }
        Err(e) => {
            // release the slot before touching the map: no thread ever
            // waits on the map while holding a slot
            drop(guard);
            let mut map = map.lock().expect("cache lock");
            if let Some(current) = map.get(&key) {
                let still_empty = Arc::ptr_eq(current, &slot)
                    && current.lock().expect("cache slot lock").is_none();
                if still_empty {
                    map.remove(&key);
                }
            }
            Err(e)
        }
    }
}

/// Number of built entries in a slot map.
fn built_len<K, T>(map: &Mutex<HashMap<K, Slot<T>>>) -> usize {
    map.lock()
        .expect("cache lock")
        .values()
        .filter(|slot| slot.lock().expect("cache slot lock").is_some())
        .count()
}

impl EvaluatorCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the shared evaluator for `(model, lmax)`, building it on
    /// first use.
    ///
    /// Concurrent first lookups of one key build once: the losers block on
    /// the key's slot and then count a *hit*, so `misses` is exactly the
    /// number of distinct cached evaluators, deterministically, whatever
    /// the interleaving.
    ///
    /// # Errors
    ///
    /// Propagates [`Evaluator::new`] validation (cyclic models, or
    /// `lmax > n - 1`).
    pub fn evaluator(&self, model: &SystemModel, lmax: usize) -> Result<SharedEvaluator> {
        let key = (model.n(), model.c(), model.path_kind(), lmax);
        get_or_build(&self.map, &self.hits, &self.misses, key, || {
            Evaluator::new(model, lmax)
        })
    }

    /// Returns the shared [`FoldWorkspace`] for `(model, dist)`, building
    /// it on first use with the same once-per-key deduplication as
    /// [`EvaluatorCache::evaluator`]. Counted in
    /// [`EvaluatorCache::workspace_stats`], not in the evaluator stats.
    ///
    /// # Errors
    ///
    /// Propagates [`FoldWorkspace::new`] validation (distributions the
    /// model rejects).
    pub fn workspace(&self, model: &SystemModel, dist: &PathLengthDist) -> Result<SharedWorkspace> {
        let key = (
            model.n(),
            model.c(),
            model.path_kind(),
            dist.pmf().iter().map(|p| p.to_bits()).collect(),
        );
        get_or_build(
            &self.workspaces,
            &self.ws_hits,
            &self.ws_misses,
            key,
            || FoldWorkspace::new(model, dist),
        )
    }

    /// Number of distinct evaluators currently cached.
    pub fn len(&self) -> usize {
        built_len(&self.map)
    }

    /// Whether the cache holds no evaluators.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of distinct fold workspaces currently cached.
    pub fn workspace_len(&self) -> usize {
        built_len(&self.workspaces)
    }

    /// Current evaluator hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Current fold-workspace hit/miss counters.
    pub fn workspace_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.ws_hits.load(Ordering::Relaxed),
            misses: self.ws_misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::PathLengthDist;

    #[test]
    fn distinct_keys_build_distinct_evaluators() {
        let cache = EvaluatorCache::new();
        let m1 = SystemModel::new(50, 1).unwrap();
        let m2 = SystemModel::new(50, 2).unwrap();
        cache.evaluator(&m1, 20).unwrap();
        cache.evaluator(&m1, 30).unwrap();
        cache.evaluator(&m2, 20).unwrap();
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.stats(), CacheStats { hits: 0, misses: 3 });
    }

    #[test]
    fn repeated_lookups_hit() {
        let cache = EvaluatorCache::new();
        let model = SystemModel::new(40, 1).unwrap();
        for _ in 0..5 {
            cache.evaluator(&model, 10).unwrap();
        }
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats(), CacheStats { hits: 4, misses: 1 });
    }

    #[test]
    fn cached_evaluator_matches_fresh_one() {
        let cache = EvaluatorCache::new();
        let model = SystemModel::new(60, 2).unwrap();
        let shared = cache.evaluator(&model, 25).unwrap();
        let fresh = Evaluator::new(&model, 25).unwrap();
        let pmf = PathLengthDist::uniform(2, 12).unwrap();
        assert_eq!(shared.h_star(pmf.pmf()), fresh.h_star(pmf.pmf()));
    }

    #[test]
    fn invalid_requests_error_and_do_not_poison() {
        let cache = EvaluatorCache::new();
        let model = SystemModel::new(10, 1).unwrap();
        assert!(cache.evaluator(&model, 10).is_err()); // lmax > n-1
        assert!(cache.evaluator(&model, 9).is_ok());
        assert_eq!(cache.len(), 1);
        // same for workspaces: an infeasible dist fails, then a valid
        // lookup of the same model succeeds
        assert!(cache.workspace(&model, &PathLengthDist::fixed(10)).is_err());
        assert!(cache.workspace(&model, &PathLengthDist::fixed(5)).is_ok());
        assert_eq!(cache.workspace_len(), 1);
        assert_eq!(cache.workspace_stats(), CacheStats { hits: 0, misses: 1 });
    }

    #[test]
    fn concurrent_access_is_safe() {
        let cache = std::sync::Arc::new(EvaluatorCache::new());
        let model = SystemModel::new(80, 1).unwrap();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let cache = std::sync::Arc::clone(&cache);
                s.spawn(move || {
                    for lmax in [10usize, 20, 10, 20, 30] {
                        cache.evaluator(&model, lmax).unwrap();
                    }
                });
            }
        });
        assert_eq!(cache.len(), 3);
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 40);
        // per-key dedup: racing first lookups build once (losers wait on
        // the slot and count hits), so misses == distinct keys exactly
        assert_eq!(stats.misses, 3);
    }

    #[test]
    fn workspace_lookups_dedupe_by_model_and_pmf() {
        let cache = EvaluatorCache::new();
        let model = SystemModel::new(30, 2).unwrap();
        let d1 = PathLengthDist::uniform(1, 6).unwrap();
        let d2 = PathLengthDist::fixed(4);
        cache.workspace(&model, &d1).unwrap();
        cache.workspace(&model, &d1).unwrap();
        cache.workspace(&model, &d2).unwrap();
        assert_eq!(cache.workspace_len(), 2);
        assert_eq!(cache.workspace_stats(), CacheStats { hits: 1, misses: 2 });
        // workspace traffic leaves evaluator stats untouched
        assert_eq!(cache.stats(), CacheStats { hits: 0, misses: 0 });
    }

    #[test]
    fn cached_workspace_matches_one_shot_posterior() {
        use crate::engine::observation::observe;
        use crate::engine::posterior::sender_posterior;
        let cache = EvaluatorCache::new();
        let model = SystemModel::new(12, 1).unwrap();
        let dist = PathLengthDist::uniform(1, 5).unwrap();
        let compromised: Vec<bool> = (0..12).map(|i| i == 11).collect();
        let ws = cache.workspace(&model, &dist).unwrap();
        let obs = observe(2, &[11, 4, 6], &compromised);
        let got = ws.posterior(&obs, &compromised).unwrap();
        let expect = sender_posterior(&model, &dist, &obs, &compromised).unwrap();
        assert_eq!(got, expect);
    }
}
