//! Shared, memoized [`Evaluator`] handles for multi-scenario sweeps.
//!
//! Building an [`Evaluator`] precomputes log-factorial tables for a
//! `(model, lmax)` pair; a parameter sweep evaluates many strategies
//! against the same handful of models, so paying that cost once per model
//! — and sharing the result across worker threads — is the difference
//! between `O(cells)` and `O(models)` table builds. The cache hands out
//! cheap-to-clone [`SharedEvaluator`] handles (`Arc`s) keyed by
//! `(n, c, path_kind, lmax)` and is safe to use concurrently.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::engine::simple::Evaluator;
use crate::error::Result;
use crate::model::{PathKind, SystemModel};

/// A cheap-to-clone, thread-shareable handle to an exact [`Evaluator`].
pub type SharedEvaluator = Arc<Evaluator>;

/// Concurrency-safe memoization of [`Evaluator`] construction, keyed by
/// `(n, c, path_kind, lmax)`.
///
/// # Examples
///
/// ```
/// use anonroute_core::engine::EvaluatorCache;
/// use anonroute_core::{PathLengthDist, SystemModel};
///
/// let cache = EvaluatorCache::new();
/// let model = SystemModel::new(100, 1)?;
/// let a = cache.evaluator(&model, 99)?;
/// let b = cache.evaluator(&model, 99)?; // same handle, no rebuild
/// assert_eq!(cache.stats().misses, 1);
/// assert_eq!(cache.stats().hits, 1);
/// let h = a.h_star(PathLengthDist::fixed(5).pmf());
/// assert!((h - b.h_star(PathLengthDist::fixed(5).pmf())).abs() == 0.0);
/// # Ok::<(), anonroute_core::Error>(())
/// ```
#[derive(Debug, Default)]
pub struct EvaluatorCache {
    map: Mutex<HashMap<(usize, usize, PathKind, usize), SharedEvaluator>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

/// Hit/miss counters of an [`EvaluatorCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: usize,
    /// Lookups that had to build a fresh evaluator.
    pub misses: usize,
}

impl EvaluatorCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the shared evaluator for `(model, lmax)`, building it on
    /// first use.
    ///
    /// The table is built outside the cache lock, so a slow build does not
    /// serialize unrelated lookups. If two threads race on the same key the
    /// first insert wins, the duplicate build is dropped, and the loser
    /// counts a *hit* — `misses` is exactly the number of distinct cached
    /// evaluators, deterministically, whatever the interleaving.
    ///
    /// # Errors
    ///
    /// Propagates [`Evaluator::new`] validation (cyclic models, or
    /// `lmax > n - 1`).
    pub fn evaluator(&self, model: &SystemModel, lmax: usize) -> Result<SharedEvaluator> {
        let key = (model.n(), model.c(), model.path_kind(), lmax);
        if let Some(found) = self.map.lock().expect("cache lock").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(found));
        }
        let built = Arc::new(Evaluator::new(model, lmax)?);
        let mut map = self.map.lock().expect("cache lock");
        let shared = match map.entry(key) {
            std::collections::hash_map::Entry::Occupied(entry) => {
                // another thread inserted while we were building
                self.hits.fetch_add(1, Ordering::Relaxed);
                Arc::clone(entry.get())
            }
            std::collections::hash_map::Entry::Vacant(entry) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                Arc::clone(entry.insert(built))
            }
        };
        Ok(shared)
    }

    /// Number of distinct evaluators currently cached.
    pub fn len(&self) -> usize {
        self.map.lock().expect("cache lock").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::PathLengthDist;

    #[test]
    fn distinct_keys_build_distinct_evaluators() {
        let cache = EvaluatorCache::new();
        let m1 = SystemModel::new(50, 1).unwrap();
        let m2 = SystemModel::new(50, 2).unwrap();
        cache.evaluator(&m1, 20).unwrap();
        cache.evaluator(&m1, 30).unwrap();
        cache.evaluator(&m2, 20).unwrap();
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.stats(), CacheStats { hits: 0, misses: 3 });
    }

    #[test]
    fn repeated_lookups_hit() {
        let cache = EvaluatorCache::new();
        let model = SystemModel::new(40, 1).unwrap();
        for _ in 0..5 {
            cache.evaluator(&model, 10).unwrap();
        }
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats(), CacheStats { hits: 4, misses: 1 });
    }

    #[test]
    fn cached_evaluator_matches_fresh_one() {
        let cache = EvaluatorCache::new();
        let model = SystemModel::new(60, 2).unwrap();
        let shared = cache.evaluator(&model, 25).unwrap();
        let fresh = Evaluator::new(&model, 25).unwrap();
        let pmf = PathLengthDist::uniform(2, 12).unwrap();
        assert_eq!(shared.h_star(pmf.pmf()), fresh.h_star(pmf.pmf()));
    }

    #[test]
    fn invalid_requests_error_and_do_not_poison() {
        let cache = EvaluatorCache::new();
        let model = SystemModel::new(10, 1).unwrap();
        assert!(cache.evaluator(&model, 10).is_err()); // lmax > n-1
        assert!(cache.evaluator(&model, 9).is_ok());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn concurrent_access_is_safe() {
        let cache = std::sync::Arc::new(EvaluatorCache::new());
        let model = SystemModel::new(80, 1).unwrap();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let cache = std::sync::Arc::clone(&cache);
                s.spawn(move || {
                    for lmax in [10usize, 20, 10, 20, 30] {
                        cache.evaluator(&model, lmax).unwrap();
                    }
                });
            }
        });
        assert_eq!(cache.len(), 3);
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 40);
        // racing builds may duplicate work, but the counters stay exact:
        // misses == distinct keys regardless of interleaving
        assert_eq!(stats.misses, 3);
    }
}
