//! Epoch-incremental posterior evaluation: a reusable fold workspace.
//!
//! [`crate::engine::sender_posterior`] is mathematically a table lookup —
//! the posterior depends on the observation only through its identity-free
//! *signature* `(sightings, runs, unit_gaps, end-gap)` plus a handful of
//! observed identities — but the one-shot entry point rebuilds the
//! log-factorial table and re-derives the hypothesis weights on every
//! call. Over a multi-epoch intersection attack (thousands of sessions
//! against one `(model, strategy)` pair) that is almost all of the cost.
//!
//! [`FoldWorkspace`] hoists everything observation-independent out of the
//! loop: it is built once per `(model, path-length distribution)` pair,
//! owns the log-factorial table and the clean-class weights, and memoizes
//! per-signature run weights as the attack discovers them. Each call to
//! [`FoldWorkspace::posterior_into`] then only fills a caller-provided
//! buffer — no allocation, no table construction — and produces bytes
//! identical to `sender_posterior` (the golden and conformance suites pin
//! this).

use std::collections::HashMap;
use std::sync::Mutex;

use crate::dist::PathLengthDist;
use crate::engine::cyclic::{cyclic_clean_weights, cyclic_run_weights};
use crate::engine::observation::{Observation, Succ};
use crate::engine::posterior::{signature_of, validate_structure};
use crate::engine::simple::{clean_hypothesis_weights, run_hypothesis_weights, EndGap};
use crate::error::{Error, Result};
use crate::kernels;
use crate::mathutil::LnFact;
use crate::model::{PathKind, SystemModel};

/// Precomputed, reusable state for evaluating many sender posteriors
/// against one `(model, strategy)` pair. See the module docs.
///
/// The workspace is immutable after construction apart from an interior
/// memo of per-signature hypothesis weights, so shared references can be
/// used from many threads at once. A racing pair of threads may derive
/// the same signature's weights twice; the derivation is a pure function
/// of the key, so whichever insert wins the results are bit-identical.
#[derive(Debug)]
pub struct FoldWorkspace {
    n: usize,
    c: usize,
    nh: usize,
    path_kind: PathKind,
    lmax: usize,
    q: Vec<f64>,
    lf: LnFact,
    ln_n: f64,
    ln_nh: f64,
    /// `(w_suspect, w_hidden)` of the run-free observation class.
    clean: (f64, f64),
    /// Memoized `(w_suspect, w_hidden)` per run signature.
    runs: Mutex<RunMemo>,
}

/// Interior memo: `(w_suspect, w_hidden)` keyed by run signature
/// `(runs, unit_gaps, receiver_pred, end_gap)`.
type RunMemo = HashMap<(usize, usize, usize, EndGap), (f64, f64)>;

impl FoldWorkspace {
    /// Builds the workspace: validates the distribution against the model
    /// and precomputes the log-factorial table and clean-class weights.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidDistribution`] for distributions the model
    /// rejects (e.g. simple paths longer than `n - 1`).
    pub fn new(model: &SystemModel, dist: &PathLengthDist) -> Result<Self> {
        model.validate_dist(dist)?;
        let n = model.n();
        let nh = model.honest();
        let q = dist.pmf().to_vec();
        let ln_n = (n as f64).ln();
        let ln_nh = if nh > 0 {
            (nh as f64).ln()
        } else {
            f64::NEG_INFINITY
        };
        let (lmax, lf) = match model.path_kind() {
            PathKind::Simple => {
                let lmax = dist.max_len().min(n - 1);
                (lmax, LnFact::new(n + lmax + 4))
            }
            PathKind::Cyclic => {
                let lmax = dist.max_len();
                (lmax, LnFact::new(2 * lmax + 8))
            }
        };
        let clean = match model.path_kind() {
            PathKind::Simple => clean_hypothesis_weights(&lf, &q, lmax, n, nh),
            PathKind::Cyclic => cyclic_clean_weights(&q, lmax, ln_n, ln_nh),
        };
        Ok(FoldWorkspace {
            n,
            c: model.c(),
            nh,
            path_kind: model.path_kind(),
            lmax,
            q,
            lf,
            ln_n,
            ln_nh,
            clean,
            runs: Mutex::new(HashMap::new()),
        })
    }

    /// Number of member nodes of the underlying model.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Path kind of the underlying model.
    pub fn path_kind(&self) -> PathKind {
        self.path_kind
    }

    /// Number of distinct run signatures memoized so far.
    pub fn memoized_signatures(&self) -> usize {
        self.runs.lock().expect("workspace lock").len()
    }

    /// `(w_suspect, w_hidden)` for a run signature, derived on first use.
    fn run_weights_for(&self, sig: (usize, usize, usize, EndGap)) -> (f64, f64) {
        if let Some(&w) = self.runs.lock().expect("workspace lock").get(&sig) {
            return w;
        }
        // derive outside the lock: a pure function of the key, so a racing
        // duplicate derivation produces the same bits
        let (s, m, unit_gaps, end) = sig;
        let w = match self.path_kind {
            PathKind::Simple => {
                let obs0 = unit_gaps + 2 * (m - 1 - unit_gaps) + end.observed();
                let k0 = (m - 1 - unit_gaps) + usize::from(end.is_free());
                run_hypothesis_weights(&self.lf, &self.q, self.lmax, self.n, self.nh, s, obs0, k0)
            }
            PathKind::Cyclic => cyclic_run_weights(
                &self.lf, &self.q, self.lmax, self.ln_n, self.ln_nh, self.nh, s, m, unit_gaps, end,
            ),
        };
        *self
            .runs
            .lock()
            .expect("workspace lock")
            .entry(sig)
            .or_insert(w)
    }

    /// Computes the sender posterior for one observation into `out`
    /// (resized to `n`), bit-identical to
    /// [`crate::engine::sender_posterior`] on the same inputs but without
    /// per-call allocation or table construction.
    ///
    /// # Errors
    ///
    /// Same conditions as [`crate::engine::sender_posterior`].
    pub fn posterior_into(
        &self,
        obs: &Observation,
        compromised: &[bool],
        out: &mut Vec<f64>,
    ) -> Result<()> {
        if compromised.len() != self.n {
            return Err(Error::InvalidObservation(format!(
                "compromised vector has length {}, model has n={}",
                compromised.len(),
                self.n
            )));
        }
        let c_actual = compromised.iter().filter(|&&b| b).count();
        if c_actual != self.c {
            return Err(Error::InvalidObservation(format!(
                "compromised vector marks {c_actual} nodes, model says c={}",
                self.c
            )));
        }
        validate_structure(self.n, obs, compromised)?;

        // Compromised sender: the origin agent saw everything.
        if let Some(s) = obs.origin {
            out.clear();
            out.resize(self.n, 0.0);
            out[s] = 1.0;
            return Ok(());
        }
        self.fill_posterior(obs, compromised, out)
    }

    /// Convenience wrapper around [`FoldWorkspace::posterior_into`]
    /// returning a fresh vector.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FoldWorkspace::posterior_into`].
    pub fn posterior(&self, obs: &Observation, compromised: &[bool]) -> Result<Vec<f64>> {
        let mut out = Vec::new();
        self.posterior_into(obs, compromised, &mut out)?;
        Ok(out)
    }

    /// The fill pass proper: weights, normalizer, divide. Assumes the
    /// observation was already validated and has no origin report.
    pub(crate) fn fill_posterior(
        &self,
        obs: &Observation,
        compromised: &[bool],
        out: &mut Vec<f64>,
    ) -> Result<()> {
        let (w_suspect, w_hidden, suspect) = if obs.runs.is_empty() {
            (self.clean.0, self.clean.1, obs.receiver_pred)
        } else {
            let (a, b) = self.run_weights_for(signature_of(obs));
            (a, b, obs.runs[0].pred)
        };

        out.resize(self.n, 0.0);
        match self.path_kind {
            PathKind::Simple => {
                for (o, &bad) in out.iter_mut().zip(compromised) {
                    // a compromised sender would have reported origin
                    *o = if bad { 0.0 } else { w_hidden };
                }
                // an observed honest intermediate cannot be the sender on
                // a simple path
                let mut mark = |id: usize| {
                    if !compromised[id] {
                        out[id] = 0.0;
                    }
                };
                mark(obs.receiver_pred);
                for run in &obs.runs {
                    mark(run.pred);
                    if let Succ::Node(v) = run.succ {
                        mark(v);
                    }
                }
                // last: the suspect keeps its weight even when observed
                if !compromised[suspect] {
                    out[suspect] = w_suspect;
                }
            }
            PathKind::Cyclic => {
                // everyone honest stays a candidate — the sender may
                // reappear as an intermediate on a cyclic path
                for (o, &bad) in out.iter_mut().zip(compromised) {
                    *o = if bad { 0.0 } else { w_hidden };
                }
                if !compromised[suspect] {
                    out[suspect] = w_suspect + w_hidden;
                }
            }
        }
        // the compromised entries contribute exact +0.0 exactly as the
        // historical skip-and-accumulate loop did
        let z = kernels::sum_ordered(out);
        if z <= 0.0 {
            return Err(Error::InvalidObservation(
                "observation has zero likelihood under the strategy".into(),
            ));
        }
        kernels::div_in_place(out, z);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::observation::observe;
    use crate::engine::posterior::sender_posterior;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn comp(n: usize, ids: &[usize]) -> Vec<bool> {
        let mut v = vec![false; n];
        for &i in ids {
            v[i] = true;
        }
        v
    }

    #[test]
    fn workspace_matches_one_shot_posterior_bitwise() {
        for kind in [PathKind::Simple, PathKind::Cyclic] {
            let model = SystemModel::with_path_kind(12, 2, kind).unwrap();
            let dist = PathLengthDist::uniform(0, 5).unwrap();
            let compromised = comp(12, &[3, 9]);
            let ws = FoldWorkspace::new(&model, &dist).unwrap();
            let mut rng = StdRng::seed_from_u64(17);
            let mut scratch: Vec<usize> = (0..12).collect();
            let mut buf = Vec::new();
            for _ in 0..200 {
                let sender = rng.gen_range(0..12);
                let l = dist.sample(&mut rng);
                let path = crate::engine::montecarlo::sample_path(
                    &model,
                    sender,
                    l,
                    &mut rng,
                    &mut scratch,
                );
                let obs = observe(sender, &path, &compromised);
                let expect = sender_posterior(&model, &dist, &obs, &compromised).unwrap();
                ws.posterior_into(&obs, &compromised, &mut buf).unwrap();
                assert_eq!(
                    buf.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    expect.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    "kind={kind:?} obs={obs:?}"
                );
            }
            assert!(ws.memoized_signatures() > 0 || kind == PathKind::Cyclic);
        }
    }

    #[test]
    fn workspace_validates_like_the_one_shot_entry_point() {
        let model = SystemModel::new(8, 1).unwrap();
        let dist = PathLengthDist::fixed(2);
        let compromised = comp(8, &[7]);
        let ws = FoldWorkspace::new(&model, &dist).unwrap();
        let obs = observe(0, &[1, 2], &compromised);
        // wrong length and wrong count fail with the same errors
        assert!(ws.posterior(&obs, &comp(9, &[7])).is_err());
        assert!(ws.posterior(&obs, &comp(8, &[1, 2])).is_err());
        // infeasible strategy is rejected at construction, like validate_dist
        assert!(FoldWorkspace::new(&model, &PathLengthDist::fixed(8)).is_err());
    }

    #[test]
    fn workspace_is_shareable_across_threads() {
        let model = SystemModel::new(16, 2).unwrap();
        let dist = PathLengthDist::uniform(1, 6).unwrap();
        let compromised = comp(16, &[0, 8]);
        let ws = FoldWorkspace::new(&model, &dist).unwrap();
        let expected = {
            let obs = observe(3, &[1, 0, 5, 2], &compromised);
            sender_posterior(&model, &dist, &obs, &compromised).unwrap()
        };
        std::thread::scope(|s| {
            for _ in 0..4 {
                let ws = &ws;
                let compromised = &compromised;
                let expected = &expected;
                s.spawn(move || {
                    let obs = observe(3, &[1, 0, 5, 2], compromised);
                    let mut buf = Vec::new();
                    for _ in 0..50 {
                        ws.posterior_into(&obs, compromised, &mut buf).unwrap();
                        assert_eq!(&buf, expected);
                    }
                });
            }
        });
    }
}
