//! Monte-Carlo estimation of the anonymity degree.
//!
//! Samples complete protocol outcomes from the generative model (sender,
//! path length, path), forms the adversary's observation, evaluates the
//! *exact* posterior entropy of that observation, and averages. Because
//! each per-event entropy is exact, the estimator is unbiased for
//! `H*(S) = E[H(·|E)]` and its error shrinks as `1/√samples`.
//!
//! This estimator validates the closed-form engines and is the reference
//! method for configurations without a closed form (it also mirrors what
//! the full discrete-event simulation in `anonroute-sim` measures).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dist::PathLengthDist;
use crate::engine::fold::FoldWorkspace;
use crate::engine::observation::observe;
use crate::error::Result;
use crate::mathutil::entropy_bits;
use crate::model::{PathKind, SystemModel};

/// Result of a Monte-Carlo estimation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonteCarloEstimate {
    /// Sample mean of the posterior entropy (the estimate of `H*`).
    pub mean: f64,
    /// Standard error of the mean.
    pub std_error: f64,
    /// Number of samples drawn.
    pub samples: usize,
}

impl MonteCarloEstimate {
    /// Two-sided 95% confidence interval `(lo, hi)` under the normal
    /// approximation.
    pub fn ci95(&self) -> (f64, f64) {
        (
            self.mean - 1.96 * self.std_error,
            self.mean + 1.96 * self.std_error,
        )
    }

    /// Whether `value` lies within the 95% confidence interval.
    pub fn covers(&self, value: f64) -> bool {
        let (lo, hi) = self.ci95();
        (lo..=hi).contains(&value)
    }
}

/// Estimates `H*(S)` by sampling `samples` message transmissions with a
/// deterministic seed.
///
/// # Errors
///
/// Propagates distribution-validation errors.
pub fn estimate_anonymity_degree(
    model: &SystemModel,
    dist: &PathLengthDist,
    samples: usize,
    seed: u64,
) -> Result<MonteCarloEstimate> {
    // validates the distribution and hoists the log-factorial table and
    // hypothesis weights out of the sampling loop
    let workspace = FoldWorkspace::new(model, dist)?;
    let n = model.n();
    let c = model.c();
    let compromised: Vec<bool> = (0..n).map(|i| i < c).collect();
    let mut rng = StdRng::seed_from_u64(seed);

    let mut sum = 0.0;
    let mut sum_sq = 0.0;
    let mut scratch: Vec<usize> = (0..n).collect();
    let mut path: Vec<usize> = Vec::new();
    let mut post: Vec<f64> = Vec::new();
    for _ in 0..samples {
        let sender = rng.gen_range(0..n);
        let h = if compromised[sender] {
            0.0
        } else {
            let l = dist.sample(&mut rng);
            sample_path_into(model, sender, l, &mut rng, &mut scratch, &mut path);
            let obs = observe(sender, &path, &compromised);
            workspace
                .posterior_into(&obs, &compromised, &mut post)
                .expect("generated observations are consistent by construction");
            entropy_bits(&post)
        };
        sum += h;
        sum_sq += h * h;
    }
    let mean = sum / samples as f64;
    let var = (sum_sq / samples as f64 - mean * mean).max(0.0);
    let std_error = (var / samples as f64).sqrt();
    Ok(MonteCarloEstimate {
        mean,
        std_error,
        samples,
    })
}

/// Draws a random rerouting path of length `l` for `sender` under the
/// model's path kind. `scratch` must contain `0..n` in any order and is
/// reused across calls to avoid allocation.
pub fn sample_path<R: Rng + ?Sized>(
    model: &SystemModel,
    sender: usize,
    l: usize,
    rng: &mut R,
    scratch: &mut [usize],
) -> Vec<usize> {
    let mut path = Vec::with_capacity(l);
    sample_path_into(model, sender, l, rng, scratch, &mut path);
    path
}

/// [`sample_path`] into a caller-provided buffer, consuming exactly the
/// same random draws — for sampling loops that must not allocate a fresh
/// path per iteration.
pub fn sample_path_into<R: Rng + ?Sized>(
    model: &SystemModel,
    sender: usize,
    l: usize,
    rng: &mut R,
    scratch: &mut [usize],
    out: &mut Vec<usize>,
) {
    out.clear();
    match model.path_kind() {
        PathKind::Simple => {
            // partial Fisher-Yates over the other n-1 nodes
            debug_assert_eq!(scratch.len(), model.n());
            // move sender out of the sampling prefix
            let pos = scratch
                .iter()
                .position(|&x| x == sender)
                .expect("scratch holds 0..n");
            let last = scratch.len() - 1;
            scratch.swap(pos, last);
            let m = last; // candidates live in scratch[..m]
            for k in 0..l {
                let j = rng.gen_range(k..m);
                scratch.swap(k, j);
                out.push(scratch[k]);
            }
        }
        PathKind::Cyclic => out.extend((0..l).map(|_| rng.gen_range(0..model.n()))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{cyclic, simple};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sample_path_simple_produces_distinct_nodes_excluding_sender() {
        let model = SystemModel::new(10, 0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let mut scratch: Vec<usize> = (0..10).collect();
        for _ in 0..200 {
            let path = sample_path(&model, 4, 6, &mut rng, &mut scratch);
            assert_eq!(path.len(), 6);
            assert!(!path.contains(&4));
            let mut sorted = path.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 6, "distinct nodes required");
        }
    }

    #[test]
    fn sample_path_simple_is_uniform_over_first_hop() {
        let model = SystemModel::new(5, 0).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let mut scratch: Vec<usize> = (0..5).collect();
        let mut counts = [0usize; 5];
        let trials = 20_000;
        for _ in 0..trials {
            let path = sample_path(&model, 0, 2, &mut rng, &mut scratch);
            counts[path[0]] += 1;
        }
        assert_eq!(counts[0], 0);
        for &cnt in &counts[1..] {
            let freq = cnt as f64 / trials as f64;
            assert!((freq - 0.25).abs() < 0.02, "freq {freq}");
        }
    }

    #[test]
    fn monte_carlo_agrees_with_exact_simple_engine() {
        let model = SystemModel::new(40, 2).unwrap();
        let dist = PathLengthDist::uniform(1, 8).unwrap();
        let exact = simple::anonymity_degree(&model, &dist).unwrap();
        let est = estimate_anonymity_degree(&model, &dist, 30_000, 42).unwrap();
        assert!(
            est.covers(exact) || (est.mean - exact).abs() < 4.0 * est.std_error,
            "exact={exact} est={est:?}"
        );
    }

    #[test]
    fn monte_carlo_agrees_with_exact_cyclic_engine() {
        let model = SystemModel::with_path_kind(20, 2, PathKind::Cyclic).unwrap();
        let dist = PathLengthDist::geometric(0.6, 12).unwrap();
        let exact = cyclic::anonymity_degree(&model, &dist).unwrap();
        let est = estimate_anonymity_degree(&model, &dist, 30_000, 7).unwrap();
        assert!(
            est.covers(exact) || (est.mean - exact).abs() < 4.0 * est.std_error,
            "exact={exact} est={est:?}"
        );
    }

    #[test]
    fn estimator_is_deterministic_under_a_seed() {
        let model = SystemModel::new(25, 1).unwrap();
        let dist = PathLengthDist::fixed(4);
        let a = estimate_anonymity_degree(&model, &dist, 2_000, 9).unwrap();
        let b = estimate_anonymity_degree(&model, &dist, 2_000, 9).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn ci_helpers_behave() {
        let est = MonteCarloEstimate {
            mean: 5.0,
            std_error: 0.1,
            samples: 100,
        };
        let (lo, hi) = est.ci95();
        assert!(lo < 5.0 && hi > 5.0);
        assert!(est.covers(5.1));
        assert!(!est.covers(6.0));
    }
}
