//! Exact anonymity-degree computation for simple (cycle-free) paths.
//!
//! # How the computation works
//!
//! The paper defines the anonymity degree as the expected posterior entropy
//! over all observations the adversary can make (eq. 5). Because nodes are
//! interchangeable, observations collapse into *classes* described by a
//! node-identity-free [`ObservationClass`]: how many compromised sightings
//! occurred (`s`), in how many maximal runs (`m`), how many of the `m - 1`
//! inter-run gaps consist of exactly one honest node (`unit_gaps`, detected
//! by the adversary because the two runs report the same boundary node),
//! and how far the last run is from the receiver ([`EndGap`]).
//!
//! Crucially, the *leading* gap — the number of honest nodes between the
//! sender and the first compromised run — is invisible: a leading gap of
//! zero (the run's reported predecessor **is** the sender) produces exactly
//! the same observation as a positive leading gap. The posterior therefore
//! splits between the hypothesis "`pred(run₁)` is the sender" and the
//! hypotheses "the sender is one of the unobserved honest nodes", which by
//! symmetry are all equally likely.
//!
//! For a given path length `l` the number of gap compositions consistent
//! with a class is a stars-and-bars binomial and the number of ways to fill
//! the hidden honest slots is a falling factorial, so both class
//! probabilities and class posteriors have closed forms — the engine is
//! exact for **any** number of compromised nodes `c`, not just the paper's
//! `c = 1`.

use crate::dist::PathLengthDist;
use crate::error::Result;
use crate::mathutil::{entropy_bits_grouped, LnFact};
use crate::model::SystemModel;

/// Distance (in honest nodes) from the last compromised run to the
/// receiver, as far as the adversary can resolve it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EndGap {
    /// The run forwarded directly to the receiver (`g = 0`).
    Touching,
    /// Exactly one honest node separates the run from the receiver: the
    /// run's successor equals the receiver's reported predecessor (`g = 1`).
    One,
    /// At least two honest nodes (`g ≥ 2`); only the two boundary nodes
    /// are observed.
    TwoPlus,
}

impl EndGap {
    /// Honest nodes of the end gap whose identity the adversary observes.
    #[inline]
    pub(crate) fn observed(self) -> usize {
        match self {
            EndGap::Touching => 0,
            EndGap::One => 1,
            EndGap::TwoPlus => 2,
        }
    }

    /// Whether the gap has unbounded extra (hidden) honest nodes.
    #[inline]
    pub(crate) fn is_free(self) -> bool {
        matches!(self, EndGap::TwoPlus)
    }

    pub(crate) const ALL: [EndGap; 3] = [EndGap::Touching, EndGap::One, EndGap::TwoPlus];
}

/// Node-identity-free description of one adversary observation class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObservationClass {
    /// The sender itself is compromised: its agent watched the message
    /// originate. Posterior entropy is zero.
    SenderCompromised,
    /// No compromised node lay on the path; the adversary only knows the
    /// receiver's predecessor (which *is* the sender if the path length
    /// was zero — the short-path effect of Figure 4(d)).
    Clean,
    /// At least one compromised run on the path.
    Runs {
        /// Total compromised sightings `s ≥ 1`.
        on_path: usize,
        /// Number of maximal runs `m`, `1 ≤ m ≤ s`.
        runs: usize,
        /// Inter-run gaps of exactly one honest node (`0 ≤ unit_gaps ≤ m-1`).
        unit_gaps: usize,
        /// End-gap class.
        end: EndGap,
    },
}

/// Probability, entropy and posterior shape of one observation class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassReport {
    /// Which class this row describes.
    pub class: ObservationClass,
    /// Probability that the adversary observes this class.
    pub probability: f64,
    /// Posterior sender entropy `H(·|E)` in bits, identical for every
    /// observation in the class.
    pub entropy_bits: f64,
    /// Posterior probability assigned to the *reported predecessor* of the
    /// first run (or of the receiver, for [`ObservationClass::Clean`]) —
    /// the node the adversary suspects most or least depending on the
    /// strategy. `1.0` for [`ObservationClass::SenderCompromised`].
    pub suspect_posterior: f64,
}

/// Full decomposition of the anonymity degree of a strategy.
#[derive(Debug, Clone, PartialEq)]
pub struct AnonymityAnalysis {
    /// The anonymity degree `H*(S)` in bits (eq. 5 of the paper).
    pub h_star: f64,
    /// Probability that the adversary identifies the sender outright
    /// (posterior is a point mass): compromised senders plus
    /// zero-entropy observation classes.
    pub p_exposed: f64,
    /// Per-class breakdown; probabilities sum to 1.
    pub classes: Vec<ClassReport>,
}

impl AnonymityAnalysis {
    /// Normalized anonymity degree `H*(S) / log2(n) ∈ [0, 1]`.
    pub fn normalized(&self, model: &SystemModel) -> f64 {
        if model.n() == 1 {
            return 0.0;
        }
        self.h_star / model.max_entropy_bits()
    }
}

/// Computes the anonymity degree `H*(S)` for simple paths.
///
/// # Errors
///
/// Returns an error when the distribution places mass on lengths a simple
/// path cannot realize (`l > n - 1`).
pub fn anonymity_degree(model: &SystemModel, dist: &PathLengthDist) -> Result<f64> {
    Ok(analysis(model, dist)?.h_star)
}

/// Posterior hypothesis weights for a run class on simple paths:
/// `(w_first_pred, w_hidden)` — the unnormalized posterior weight of the
/// first run's reported predecessor and of *each* unobserved honest node.
///
/// `s` is the number of compromised sightings, `obs0` the number of honest
/// intermediates observed by identity excluding the leading boundary, and
/// `k0` the number of gaps (excluding the leading one) that can hide extra
/// honest nodes.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_hypothesis_weights(
    lf: &LnFact,
    q: &[f64],
    lmax: usize,
    n: usize,
    nh: usize,
    s: usize,
    obs0: usize,
    k0: usize,
) -> (f64, f64) {
    let mut w_a = 0.0;
    let mut w_b = 0.0;
    for (l, &ql) in q.iter().enumerate().take(lmax + 1).skip(s) {
        if ql == 0.0 {
            continue;
        }
        let den = lf.ln_falling(n - 1, l).expect("l <= n-1 by validation");
        let h_a = l as i64 - s as i64 - obs0 as i64;

        // Hypothesis A: leading gap = 0, the reported predecessor is the
        // sender.
        if h_a >= 0 && nh > obs0 {
            if let (Some(sb), Some(fall)) = (
                lf.ln_stars_bars(h_a, k0),
                lf.ln_falling(nh - obs0 - 1, h_a as usize),
            ) {
                w_a += ql * (sb + fall - den).exp();
            }
        }
        // Hypothesis B: leading gap >= 1; the reported predecessor is one
        // more observed honest intermediate and the sender is hidden.
        let h_b = h_a - 1;
        if h_b >= 0 && nh >= obs0 + 2 {
            if let (Some(sb), Some(fall)) = (
                lf.ln_stars_bars(h_b, k0 + 1),
                lf.ln_falling(nh - obs0 - 2, h_b as usize),
            ) {
                w_b += ql * (sb + fall - den).exp();
            }
        }
    }
    (w_a, w_b)
}

/// Posterior hypothesis weights for the clean class (no compromised node on
/// the path): `(w_receiver_pred, w_hidden)`.
pub(crate) fn clean_hypothesis_weights(
    lf: &LnFact,
    q: &[f64],
    lmax: usize,
    n: usize,
    nh: usize,
) -> (f64, f64) {
    let w_a = q.first().copied().unwrap_or(0.0);
    let mut w_b = 0.0;
    for (l, &ql) in q.iter().enumerate().take(lmax + 1).skip(1) {
        if ql == 0.0 {
            continue;
        }
        let den = lf.ln_falling(n - 1, l).expect("l <= n-1 by validation");
        if nh >= 2 {
            if let Some(num) = lf.ln_falling(nh - 2, l - 1) {
                w_b += ql * (num - den).exp();
            }
        }
    }
    (w_a, w_b)
}

/// Computes the full class-by-class decomposition of `H*(S)` for simple
/// paths. See the module documentation for the derivation.
///
/// # Errors
///
/// Returns an error when the distribution places mass on lengths a simple
/// path cannot realize (`l > n - 1`).
pub fn analysis(model: &SystemModel, dist: &PathLengthDist) -> Result<AnonymityAnalysis> {
    model.validate_dist(dist)?;
    let lmax = dist.max_len().min(model.n().saturating_sub(1));
    let ev = Evaluator::new(model, lmax)?;
    Ok(ev.analyze(dist.pmf()))
}

/// Reusable exact evaluator for simple paths.
///
/// Precomputes the log-factorial tables for a `(model, lmax)` pair so that
/// many distributions over the same support can be scored cheaply — the hot
/// loop of [`crate::optimize`].
///
/// # Examples
///
/// ```
/// use anonroute_core::engine::simple::Evaluator;
/// use anonroute_core::{PathLengthDist, SystemModel};
///
/// let model = SystemModel::new(100, 1)?;
/// let ev = Evaluator::new(&model, 10)?;
/// let h = ev.h_star(PathLengthDist::fixed(5).pmf());
/// assert!(h > 6.0);
/// # Ok::<(), anonroute_core::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct Evaluator {
    n: usize,
    c: usize,
    nh: usize,
    lmax: usize,
    lf: LnFact,
}

impl Evaluator {
    /// Builds an evaluator for distributions supported on `0..=lmax`.
    ///
    /// # Errors
    ///
    /// Returns an error if the model uses cyclic paths or if
    /// `lmax > n - 1`.
    pub fn new(model: &SystemModel, lmax: usize) -> Result<Self> {
        if model.path_kind() != crate::model::PathKind::Simple {
            return Err(crate::error::Error::InvalidModel(
                "the simple-path evaluator requires PathKind::Simple".into(),
            ));
        }
        if lmax > model.n() - 1 {
            return Err(crate::error::Error::InvalidDistribution(format!(
                "simple paths support at most n-1={} intermediate nodes",
                model.n() - 1
            )));
        }
        Ok(Evaluator {
            n: model.n(),
            c: model.c(),
            nh: model.honest(),
            lmax,
            lf: LnFact::new(model.n() + lmax + 4),
        })
    }

    /// Exact `H*` of an (unnormalized) pmf over `0..=lmax`; mass beyond
    /// `lmax` is ignored.
    pub fn h_star(&self, pmf: &[f64]) -> f64 {
        self.analyze(pmf).h_star
    }

    /// Full class decomposition for an (unnormalized) pmf over `0..=lmax`.
    pub fn analyze(&self, pmf: &[f64]) -> AnonymityAnalysis {
        let (n, c, nh, lmax, lf) = (self.n, self.c, self.nh, self.lmax, &self.lf);
        let mut q: Vec<f64> = pmf.iter().take(lmax + 1).copied().collect();
        let total: f64 = q.iter().sum();
        if total > 0.0 && (total - 1.0).abs() > 1e-15 {
            for v in &mut q {
                *v /= total;
            }
        }
        let q = &q[..];
        analyze_normalized(n, c, nh, lmax, lf, q)
    }
}

#[allow(clippy::too_many_arguments)]
fn analyze_normalized(
    n: usize,
    c: usize,
    nh: usize,
    lmax: usize,
    lf: &LnFact,
    q: &[f64],
) -> AnonymityAnalysis {
    let mut classes = Vec::new();
    let mut h_star = 0.0;
    let mut p_exposed = 0.0;

    // --- sender compromised (local-eavesdropper case) --------------------
    if c > 0 {
        let p = c as f64 / n as f64;
        p_exposed += p;
        classes.push(ClassReport {
            class: ObservationClass::SenderCompromised,
            probability: p,
            entropy_bits: 0.0,
            suspect_posterior: 1.0,
        });
    }

    if nh == 0 {
        return AnonymityAnalysis {
            h_star: 0.0,
            p_exposed,
            classes,
        };
    }

    // --- clean class: no compromised node on the path --------------------
    {
        // Hypothesis A: path length 0 — the receiver's predecessor is the
        // sender. Hypothesis B (per candidate): the sender is a hidden
        // honest node; the receiver's predecessor is an honest intermediate
        // and the remaining l-1 intermediates are hidden honest nodes.
        let (w_a, w_b) = clean_hypothesis_weights(lf, q, lmax, n, nh);
        let n_hidden = nh - 1;
        let entropy = entropy_bits_grouped(&[(w_a, 1), (w_b, n_hidden)]);
        let z = w_a + w_b * n_hidden as f64;
        let suspect = if z > 0.0 { w_a / z } else { 0.0 };

        // Class probability: honest sender and an all-honest path.
        let mut p = 0.0;
        for (l, &ql) in q.iter().enumerate().take(lmax + 1) {
            if ql == 0.0 {
                continue;
            }
            let den = lf.ln_falling(n - 1, l).expect("l <= n-1 by validation");
            if let Some(num) = lf.ln_falling(nh - 1, l) {
                p += ql * (num - den).exp();
            }
        }
        p *= nh as f64 / n as f64;
        h_star += p * entropy;
        if entropy == 0.0 {
            p_exposed += p;
        }
        classes.push(ClassReport {
            class: ObservationClass::Clean,
            probability: p,
            entropy_bits: entropy,
            suspect_posterior: suspect,
        });
    }

    // --- classes with m >= 1 compromised runs ----------------------------
    for s in 1..=c.min(lmax) {
        for m in 1..=s {
            let ln_rs = lf
                .ln_binom(s - 1, m - 1)
                .expect("m <= s implies the binomial exists");
            for unit_gaps in 0..m {
                let ln_mf = lf
                    .ln_binom(m - 1, unit_gaps)
                    .expect("unit_gaps <= m-1 implies the binomial exists");
                for end in EndGap::ALL {
                    // Honest nodes observed by identity, excluding the first
                    // run's predecessor `u`: each unit gap shows 1 node, each
                    // wide gap its 2 boundaries, the end gap per its class.
                    let obs0 = unit_gaps + 2 * (m - 1 - unit_gaps) + end.observed();
                    // Gaps with unbounded hidden mass, excluding the leading gap.
                    let k0 = (m - 1 - unit_gaps) + usize::from(end.is_free());

                    let (w_a, w_b) = run_hypothesis_weights(lf, q, lmax, n, nh, s, obs0, k0);
                    let mut p_cls = 0.0;
                    for (l, &ql) in q.iter().enumerate().take(lmax + 1).skip(s) {
                        if ql == 0.0 {
                            continue;
                        }
                        let den = lf.ln_falling(n - 1, l).expect("l <= n-1 by validation");
                        let h_a = l as i64 - s as i64 - obs0 as i64;
                        // Class probability: gap layouts (leading gap free
                        // from 0) x compromised and honest id assignments.
                        if let (Some(lay), Some(fc), Some(fh)) = (
                            lf.ln_stars_bars(h_a, k0 + 1),
                            lf.ln_falling(c, s),
                            lf.ln_falling(nh - 1, l - s),
                        ) {
                            p_cls += ql * (lay + fc + fh - den).exp();
                        }
                    }
                    p_cls *= (nh as f64 / n as f64) * (ln_rs + ln_mf).exp();
                    if p_cls <= 0.0 {
                        continue;
                    }
                    let n_hidden = nh.saturating_sub(obs0 + 1);
                    let entropy = entropy_bits_grouped(&[(w_a, 1), (w_b, n_hidden)]);
                    let z = w_a + w_b * n_hidden as f64;
                    let suspect = if z > 0.0 { w_a / z } else { 0.0 };
                    h_star += p_cls * entropy;
                    if entropy == 0.0 {
                        p_exposed += p_cls;
                    }
                    classes.push(ClassReport {
                        class: ObservationClass::Runs {
                            on_path: s,
                            runs: m,
                            unit_gaps,
                            end,
                        },
                        probability: p_cls,
                        entropy_bits: entropy,
                        suspect_posterior: suspect,
                    });
                }
            }
        }
    }

    AnonymityAnalysis {
        h_star,
        p_exposed,
        classes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::PathLengthDist;
    use crate::mathutil::binary_entropy_bits;
    use crate::model::SystemModel;

    fn h_of(n: usize, c: usize, dist: &PathLengthDist) -> f64 {
        let model = SystemModel::new(n, c).unwrap();
        anonymity_degree(&model, dist).unwrap()
    }

    #[test]
    fn class_probabilities_sum_to_one() {
        for (n, c) in [(10, 0), (10, 1), (10, 3), (25, 5), (100, 1)] {
            for dist in [
                PathLengthDist::fixed(0),
                PathLengthDist::fixed(3),
                PathLengthDist::uniform(0, 6).unwrap(),
                PathLengthDist::uniform(2, 8).unwrap(),
                PathLengthDist::geometric(0.7, 9).unwrap(),
            ] {
                let model = SystemModel::new(n, c).unwrap();
                let a = analysis(&model, &dist).unwrap();
                let total: f64 = a.classes.iter().map(|r| r.probability).sum();
                assert!(
                    (total - 1.0).abs() < 1e-10,
                    "n={n} c={c} dist={dist}: classes sum to {total}"
                );
            }
        }
    }

    #[test]
    fn entropy_bounded_by_log2_n() {
        for (n, c) in [(8, 0), (8, 2), (50, 5), (100, 1)] {
            for dist in [
                PathLengthDist::fixed(1),
                PathLengthDist::fixed(5),
                PathLengthDist::uniform(1, 7).unwrap(),
            ] {
                let h = h_of(n, c, &dist);
                assert!(
                    h >= 0.0 && h <= (n as f64).log2() + 1e-12,
                    "n={n} c={c}: {h}"
                );
            }
        }
    }

    #[test]
    fn no_compromised_nodes_still_leaks_via_receiver() {
        // With c = 0 and l >= 1 fixed, the receiver sees its predecessor,
        // which cannot be the sender on a simple path: H* = log2(n-1).
        let h = h_of(20, 0, &PathLengthDist::fixed(3));
        assert!((h - 19f64.log2()).abs() < 1e-12);
    }

    #[test]
    fn direct_send_exposes_sender() {
        // l = 0: the receiver's predecessor IS the sender.
        for c in [0, 1, 4] {
            let h = h_of(30, c, &PathLengthDist::fixed(0));
            assert!(h.abs() < 1e-12, "c={c}: {h}");
        }
        let model = SystemModel::new(30, 1).unwrap();
        let a = analysis(&model, &PathLengthDist::fixed(0)).unwrap();
        assert!((a.p_exposed - 1.0).abs() < 1e-12);
    }

    #[test]
    fn paper_anchor_fixed_one_and_two_coincide() {
        // Paper Section 6.1 / Theorem 1: H*(F(1)) = H*(F(2)) = (n-2)/n log2(n-2).
        let n = 100;
        let expect = (98.0 / 100.0) * 98f64.log2();
        let h1 = h_of(n, 1, &PathLengthDist::fixed(1));
        let h2 = h_of(n, 1, &PathLengthDist::fixed(2));
        assert!((h1 - expect).abs() < 1e-12, "F(1): {h1} vs {expect}");
        assert!((h2 - expect).abs() < 1e-12, "F(2): {h2} vs {expect}");
        // ... and the value the paper plots in Figure 3(b): about 6.4824.
        assert!((h1 - 6.4824).abs() < 5e-4);
    }

    #[test]
    fn paper_anchor_fixed_three_slightly_worse() {
        // Paper Figure 3(b) bullet 3: F(3) is (slightly) worse than F(1)=F(2).
        let n = 100;
        let h2 = h_of(n, 1, &PathLengthDist::fixed(2));
        let h3 = h_of(n, 1, &PathLengthDist::fixed(3));
        assert!(h3 < h2);
        assert!(h2 - h3 < 1e-3, "the gap is tiny: {}", h2 - h3);
        // closed form: (1/n) log2(n-3) + ((n-3)/n) log2(n-2)
        let expect = (1.0 / 100.0) * 97f64.log2() + (97.0 / 100.0) * 98f64.log2();
        assert!((h3 - expect).abs() < 1e-12);
    }

    #[test]
    fn paper_anchor_fixed_four_jumps_up() {
        // Paper Figure 3(b) bullet 1: F(4) beats F(1..3) because the
        // adversary can no longer locate a mid-path compromised node.
        let n = 100;
        let h3 = h_of(n, 1, &PathLengthDist::fixed(3));
        let h4 = h_of(n, 1, &PathLengthDist::fixed(4));
        assert!(h4 > h3 + 0.01, "h4={h4} h3={h3}");
        // closed form for F(4), c=1:
        let expect = (2.0 / 100.0) * (1.0 + 0.5 * 96f64.log2())
            + (1.0 / 100.0) * 97f64.log2()
            + (96.0 / 100.0) * 98f64.log2();
        assert!((h4 - expect).abs() < 1e-12, "F(4): {h4} vs {expect}");
    }

    #[test]
    fn paper_anchor_long_path_effect() {
        // Paper Figure 3(a): H* rises, peaks, then declines for long paths.
        let n = 100;
        let h10 = h_of(n, 1, &PathLengthDist::fixed(10));
        let h50 = h_of(n, 1, &PathLengthDist::fixed(50));
        let h99 = h_of(n, 1, &PathLengthDist::fixed(99));
        assert!(h50 > h10, "rising region");
        assert!(h99 < h50, "falling region (long-path effect)");
    }

    #[test]
    fn paper_anchor_theorem3_mean_only_dependence() {
        // Theorem 3: for uniform distributions with lower bound >= 3 the
        // anonymity degree depends only on the mean.
        let n = 100;
        let model = SystemModel::new(n, 1).unwrap();
        let h_f6 = anonymity_degree(&model, &PathLengthDist::fixed(6)).unwrap();
        let h_u39 = anonymity_degree(&model, &PathLengthDist::uniform(3, 9).unwrap()).unwrap();
        let h_u48 = anonymity_degree(&model, &PathLengthDist::uniform(4, 8).unwrap()).unwrap();
        let h_u57 = anonymity_degree(&model, &PathLengthDist::uniform(5, 7).unwrap()).unwrap();
        assert!((h_f6 - h_u39).abs() < 1e-12);
        assert!((h_f6 - h_u48).abs() < 1e-12);
        assert!((h_f6 - h_u57).abs() < 1e-12);
    }

    #[test]
    fn mean_only_dependence_fails_below_three() {
        // The equivalence breaks when mass reaches lengths <= 2.
        let n = 100;
        let model = SystemModel::new(n, 1).unwrap();
        let h_f5 = anonymity_degree(&model, &PathLengthDist::fixed(5)).unwrap();
        let h_u19 = anonymity_degree(&model, &PathLengthDist::uniform(1, 9).unwrap()).unwrap();
        assert!((h_f5 - h_u19).abs() > 1e-4);
    }

    #[test]
    fn variable_length_beats_fixed_at_small_mean() {
        // Paper conclusion 4 (after optimization; already visible for
        // uniform spreads at small expected length).
        let n = 100;
        let h_f5 = h_of(n, 1, &PathLengthDist::fixed(5));
        let h_u28 = h_of(n, 1, &PathLengthDist::uniform(2, 8).unwrap());
        assert!(h_u28 > h_f5);
    }

    #[test]
    fn more_compromised_nodes_never_help() {
        let n = 40;
        let dist = PathLengthDist::uniform(2, 10).unwrap();
        let mut prev = f64::INFINITY;
        for c in 0..10 {
            let h = h_of(n, c, &dist);
            assert!(h <= prev + 1e-12, "c={c}: {h} > {prev}");
            prev = h;
        }
    }

    #[test]
    fn all_compromised_yields_zero() {
        let h = h_of(12, 12, &PathLengthDist::fixed(4));
        assert_eq!(h, 0.0);
    }

    #[test]
    fn single_node_system_has_no_anonymity() {
        let h = h_of(1, 0, &PathLengthDist::fixed(0));
        assert_eq!(h, 0.0);
    }

    #[test]
    fn suspect_posterior_matches_closed_form_for_last_hop_class() {
        // For c=1, the class "run touches receiver" has
        // P(sender = pred(run)) = q(1) / P[L >= 1].
        let model = SystemModel::new(50, 1).unwrap();
        let dist = PathLengthDist::uniform(1, 5).unwrap();
        let a = analysis(&model, &dist).unwrap();
        let touching = a
            .classes
            .iter()
            .find(|r| {
                matches!(
                    r.class,
                    ObservationClass::Runs {
                        on_path: 1,
                        runs: 1,
                        end: EndGap::Touching,
                        ..
                    }
                )
            })
            .expect("class present");
        let expect = dist.prob(1) / dist.tail(1);
        assert!((touching.suspect_posterior - expect).abs() < 1e-12);
        // and its entropy is h(alpha) + (1-alpha) log2(n-2)
        let h_expect = binary_entropy_bits(expect) + (1.0 - expect) * 48f64.log2();
        assert!((touching.entropy_bits - h_expect).abs() < 1e-12);
    }

    #[test]
    fn analysis_rejects_unrealizable_support() {
        let model = SystemModel::new(5, 1).unwrap();
        let dist = PathLengthDist::fixed(7);
        assert!(analysis(&model, &dist).is_err());
    }

    #[test]
    fn normalized_degree_in_unit_interval() {
        let model = SystemModel::new(64, 3).unwrap();
        let a = analysis(&model, &PathLengthDist::uniform(2, 9).unwrap()).unwrap();
        let nd = a.normalized(&model);
        assert!((0.0..=1.0).contains(&nd));
        assert!((a.h_star / 6.0 - nd).abs() < 1e-12);
    }
}
