//! Per-observation Bayesian sender inference — the computation of
//! `P(x0 = i | E)` that the paper delegates to its technical report [9].
//!
//! Given one concrete [`Observation`] and full knowledge of the strategy
//! (the path-length distribution) and of the compromised set, the adversary
//! assigns every member node a posterior probability of being the sender.
//! [`crate::engine::analysis`] aggregates the entropies of these posteriors
//! over all observation classes; this module computes a single posterior so
//! that a *simulated* adversary (the `anonroute-adversary` crate) can attack
//! individual messages.

use crate::dist::PathLengthDist;
use crate::engine::fold::FoldWorkspace;
use crate::engine::observation::{Observation, Succ};
use crate::engine::simple::EndGap;
use crate::error::{Error, Result};
use crate::model::SystemModel;

/// Computes the posterior probability that each member node is the sender,
/// given one observation, for the model's path kind.
///
/// `compromised[i]` must describe the same compromised set that produced
/// the observation; its length must equal `model.n()`.
///
/// The returned vector has length `n` and sums to 1 (when the observation
/// is consistent with the model at all).
///
/// # Errors
///
/// Returns [`Error::InvalidObservation`] if the observation is structurally
/// inconsistent with the model (wrong vector lengths, honest nodes inside
/// runs, a compromised reported neighbour that should have reported itself,
/// or an observation of zero likelihood under the strategy).
pub fn sender_posterior(
    model: &SystemModel,
    dist: &PathLengthDist,
    obs: &Observation,
    compromised: &[bool],
) -> Result<Vec<f64>> {
    if compromised.len() != model.n() {
        return Err(Error::InvalidObservation(format!(
            "compromised vector has length {}, model has n={}",
            compromised.len(),
            model.n()
        )));
    }
    let c_actual = compromised.iter().filter(|&&b| b).count();
    if c_actual != model.c() {
        return Err(Error::InvalidObservation(format!(
            "compromised vector marks {c_actual} nodes, model says c={}",
            model.c()
        )));
    }
    validate_structure(model.n(), obs, compromised)?;

    let n = model.n();

    // Compromised sender: the origin agent saw everything.
    if let Some(s) = obs.origin {
        let mut post = vec![0.0; n];
        post[s] = 1.0;
        return Ok(post);
    }

    // One-shot path: build a throwaway workspace. Loops that evaluate many
    // observations against one (model, dist) pair should build a
    // `FoldWorkspace` once instead.
    let workspace = FoldWorkspace::new(model, dist)?;
    let mut post = Vec::new();
    workspace.fill_posterior(obs, compromised, &mut post)?;
    Ok(post)
}

/// Structural consistency checks shared by [`sender_posterior`] and
/// [`FoldWorkspace`]: id ranges, run composition, and boundary-merge
/// invariants over a model of `n` member nodes.
pub(crate) fn validate_structure(n: usize, obs: &Observation, compromised: &[bool]) -> Result<()> {
    let check = |id: usize| -> Result<()> {
        if id >= n {
            return Err(Error::InvalidObservation(format!(
                "node id {id} out of range (n={n})"
            )));
        }
        Ok(())
    };
    check(obs.receiver_pred)?;
    if let Some(o) = obs.origin {
        check(o)?;
        if !compromised[o] {
            return Err(Error::InvalidObservation(
                "origin reported by an honest node".into(),
            ));
        }
    }
    for run in &obs.runs {
        if run.is_empty() {
            return Err(Error::InvalidObservation("empty compromised run".into()));
        }
        check(run.pred)?;
        for &m in &run.nodes {
            check(m)?;
            if !compromised[m] {
                return Err(Error::InvalidObservation(format!(
                    "node {m} inside a run is not compromised"
                )));
            }
        }
        // A compromised predecessor is only possible when it is the sender
        // itself (the run starts at position 1 and the origin agent already
        // reported); otherwise adjacent compromised nodes merge into one run.
        if compromised[run.pred] && obs.origin != Some(run.pred) {
            return Err(Error::InvalidObservation(
                "a run's predecessor is compromised but was not merged into the run".into(),
            ));
        }
        if let Succ::Node(v) = run.succ {
            check(v)?;
            if compromised[v] {
                return Err(Error::InvalidObservation(
                    "a run's successor is compromised but was not merged into the run".into(),
                ));
            }
        }
    }
    if let Some(last) = obs.runs.last() {
        match last.succ {
            Succ::Receiver => {
                let tail = *last.nodes.last().expect("runs are nonempty");
                if obs.receiver_pred != tail {
                    return Err(Error::InvalidObservation(
                        "last run touches the receiver but receiver_pred disagrees".into(),
                    ));
                }
            }
            Succ::Node(_) => {
                if compromised[obs.receiver_pred] {
                    return Err(Error::InvalidObservation(
                        "receiver's predecessor is compromised but reported no run".into(),
                    ));
                }
            }
        }
    } else if compromised[obs.receiver_pred] && obs.origin.is_none() {
        return Err(Error::InvalidObservation(
            "receiver's predecessor is compromised but no run was reported".into(),
        ));
    }
    Ok(())
}

/// Extracts the identity-free signature pieces from a concrete observation
/// with at least one run: `(sightings, runs, unit_gaps, end)`.
pub(crate) fn signature_of(obs: &Observation) -> (usize, usize, usize, EndGap) {
    let s = obs.compromised_sightings();
    let m = obs.runs.len();
    let mut unit_gaps = 0;
    for w in obs.runs.windows(2) {
        if let Succ::Node(v) = w[0].succ {
            if w[1].pred == v {
                unit_gaps += 1;
            }
        }
    }
    let end = match obs.runs.last().expect("caller ensures m >= 1").succ {
        Succ::Receiver => EndGap::Touching,
        Succ::Node(v) if v == obs.receiver_pred => EndGap::One,
        Succ::Node(_) => EndGap::TwoPlus,
    };
    (s, m, unit_gaps, end)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::observation::{observe, RunObservation};

    fn comp(n: usize, ids: &[usize]) -> Vec<bool> {
        let mut v = vec![false; n];
        for &i in ids {
            v[i] = true;
        }
        v
    }

    #[test]
    fn compromised_sender_pins_posterior() {
        let model = SystemModel::new(8, 1).unwrap();
        let dist = PathLengthDist::uniform(0, 3).unwrap();
        let compromised = comp(8, &[0]);
        let obs = observe(0, &[1, 2], &compromised);
        let post = sender_posterior(&model, &dist, &obs, &compromised).unwrap();
        assert_eq!(post[0], 1.0);
        assert!(post[1..].iter().all(|&p| p == 0.0));
    }

    #[test]
    fn first_hop_compromised_with_fixed_length_one_identifies_sender() {
        let model = SystemModel::new(8, 1).unwrap();
        let dist = PathLengthDist::fixed(1);
        let compromised = comp(8, &[7]);
        let obs = observe(2, &[7], &compromised);
        let post = sender_posterior(&model, &dist, &obs, &compromised).unwrap();
        assert!((post[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn posterior_sums_to_one_and_excludes_compromised() {
        let model = SystemModel::new(10, 2).unwrap();
        let dist = PathLengthDist::uniform(1, 5).unwrap();
        let compromised = comp(10, &[3, 7]);
        let obs = observe(0, &[1, 3, 4, 2], &compromised);
        let post = sender_posterior(&model, &dist, &obs, &compromised).unwrap();
        let total: f64 = post.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(post[3], 0.0);
        assert_eq!(post[7], 0.0);
        // observed honest intermediates (1: pred of run, 4: succ, 2: recv pred)
        assert_eq!(post[4], 0.0);
        assert_eq!(post[2], 0.0);
        // the run's predecessor keeps mass: it might be the sender
        assert!(post[1] > 0.0);
        // the true sender keeps mass
        assert!(post[0] > 0.0);
    }

    #[test]
    fn clean_observation_spreads_over_unobserved() {
        let model = SystemModel::new(6, 1).unwrap();
        let dist = PathLengthDist::fixed(2);
        let compromised = comp(6, &[5]);
        let obs = observe(0, &[1, 2], &compromised);
        let post = sender_posterior(&model, &dist, &obs, &compromised).unwrap();
        // receiver_pred = 2 is an intermediate (l = 2 fixed), cannot be sender
        assert_eq!(post[2], 0.0);
        assert_eq!(post[5], 0.0);
        // remaining honest: 0, 1, 3, 4 — all equally likely
        // (node 1 was never observed: only the receiver reports, seeing node 2)
        for i in [0, 1, 3, 4] {
            assert!((post[i] - 0.25).abs() < 1e-12, "node {i}: {}", post[i]);
        }
    }

    #[test]
    fn clean_observation_with_zero_length_support_suspects_receiver_pred() {
        let model = SystemModel::new(6, 1).unwrap();
        let dist = PathLengthDist::uniform(0, 2).unwrap();
        let compromised = comp(6, &[5]);
        let obs = observe(3, &[], &compromised);
        let post = sender_posterior(&model, &dist, &obs, &compromised).unwrap();
        // node 3 (receiver's predecessor) is the most likely sender
        for i in [0, 1, 2, 4] {
            assert!(post[3] > post[i]);
        }
    }

    #[test]
    fn rejects_wrong_compromised_vector() {
        let model = SystemModel::new(6, 1).unwrap();
        let dist = PathLengthDist::fixed(1);
        let compromised = comp(6, &[5]);
        let obs = observe(0, &[5], &compromised);
        assert!(sender_posterior(&model, &dist, &obs, &comp(6, &[1, 2])).is_err());
        assert!(sender_posterior(&model, &dist, &obs, &comp(7, &[5])).is_err());
    }

    #[test]
    fn rejects_structurally_invalid_observation() {
        let model = SystemModel::new(6, 2).unwrap();
        let dist = PathLengthDist::fixed(2);
        let compromised = comp(6, &[4, 5]);
        // honest node inside a run
        let obs = Observation {
            origin: None,
            runs: vec![RunObservation {
                nodes: vec![1],
                pred: 0,
                succ: Succ::Receiver,
            }],
            receiver_pred: 1,
        };
        assert!(sender_posterior(&model, &dist, &obs, &compromised).is_err());
        // run predecessor is compromised (should have merged)
        let obs = Observation {
            origin: None,
            runs: vec![RunObservation {
                nodes: vec![5],
                pred: 4,
                succ: Succ::Receiver,
            }],
            receiver_pred: 5,
        };
        assert!(sender_posterior(&model, &dist, &obs, &compromised).is_err());
    }

    #[test]
    fn rejects_zero_likelihood_observation() {
        let model = SystemModel::new(6, 1).unwrap();
        // strategy says length exactly 1, but we observe a run mid-path
        let dist = PathLengthDist::fixed(1);
        let compromised = comp(6, &[5]);
        let obs = observe(0, &[5, 1], &compromised); // length-2 path
        assert!(sender_posterior(&model, &dist, &obs, &compromised).is_err());
    }
}
