//! Exact anonymity-degree computation for *complicated* (cyclic) paths.
//!
//! Crowds and Onion Routing II select every hop independently and uniformly
//! from all `n` member nodes, so paths may revisit nodes — including the
//! sender. The paper calls these "complicated paths" and analyzes the
//! simple-path case numerically; this module extends the exact treatment to
//! the cyclic case.
//!
//! The structure mirrors [`crate::engine::simple`] with two differences:
//!
//! 1. **Everyone stays a candidate.** Because the sender may reappear as an
//!    intermediate, observing a node forwarding a message no longer rules
//!    it out as the sender. The posterior has exactly two levels: the first
//!    run's reported predecessor `u` (boosted by the hypothesis that the
//!    leading gap is zero) and every other honest node.
//! 2. **Boundary coincidences.** Two runs reporting the same boundary node
//!    may be separated by one honest node *or* by a longer gap whose two
//!    boundary slots happen to hold the same node. Observation classes are
//!    therefore defined by what the adversary *sees* (`eq`-looking vs
//!    distinct boundaries), and the engine sums over both explanations.

use crate::dist::PathLengthDist;
use crate::engine::simple::{AnonymityAnalysis, ClassReport, EndGap, ObservationClass};
use crate::error::Result;
use crate::mathutil::{entropy_bits_grouped, LnFact};
use crate::model::SystemModel;

/// Computes the anonymity degree `H*(S)` for cyclic (Crowds-style) paths.
///
/// # Errors
///
/// Returns [`Error::InvalidDistribution`](crate::error::Error::InvalidDistribution) for distributions the model
/// rejects.
pub fn anonymity_degree(model: &SystemModel, dist: &PathLengthDist) -> Result<f64> {
    Ok(analysis(model, dist)?.h_star)
}

/// Full class-by-class decomposition of `H*(S)` for cyclic paths.
///
/// The [`ObservationClass::Runs`] rows reuse the simple-path vocabulary:
/// `unit_gaps` counts *eq-looking* inter-run boundaries and [`EndGap::One`]
/// means the last run's successor equals the receiver's predecessor.
///
/// # Errors
///
/// Returns [`Error::InvalidDistribution`](crate::error::Error::InvalidDistribution) for distributions the model
/// rejects.
pub fn analysis(model: &SystemModel, dist: &PathLengthDist) -> Result<AnonymityAnalysis> {
    model.validate_dist(dist)?;
    let n = model.n();
    let c = model.c();
    let nh = model.honest();
    let q = dist.pmf();
    let lmax = dist.max_len();
    let lf = LnFact::new(2 * lmax + 8);
    let ln_n = (n as f64).ln();
    let ln_nh = if nh > 0 {
        (nh as f64).ln()
    } else {
        f64::NEG_INFINITY
    };

    let mut classes = Vec::new();
    let mut h_star = 0.0;
    let mut p_exposed = 0.0;

    if c > 0 {
        let p = c as f64 / n as f64;
        p_exposed += p;
        classes.push(ClassReport {
            class: ObservationClass::SenderCompromised,
            probability: p,
            entropy_bits: 0.0,
            suspect_posterior: 1.0,
        });
    }
    if nh == 0 {
        return Ok(AnonymityAnalysis {
            h_star: 0.0,
            p_exposed,
            classes,
        });
    }

    // --- clean class ------------------------------------------------------
    {
        let (w_a, w_b) = cyclic_clean_weights(q, lmax, ln_n, ln_nh);
        let entropy = entropy_bits_grouped(&[(w_a + w_b, 1), (w_b, nh - 1)]);
        let z = w_a + w_b * nh as f64;
        let suspect = if z > 0.0 { (w_a + w_b) / z } else { 0.0 };
        // probability: honest sender, all hops honest
        let mut p = 0.0;
        for (l, &ql) in q.iter().enumerate() {
            if ql > 0.0 {
                p += ql * ((l as f64) * (ln_nh - ln_n)).exp();
            }
        }
        p *= nh as f64 / n as f64;
        h_star += p * entropy;
        if entropy == 0.0 {
            p_exposed += p;
        }
        classes.push(ClassReport {
            class: ObservationClass::Clean,
            probability: p,
            entropy_bits: entropy,
            suspect_posterior: suspect,
        });
    }

    // --- run classes -------------------------------------------------------
    // Sightings can exceed c on cyclic paths (the same compromised node may
    // be revisited), so s is bounded by the path length, not by c.
    for s in 1..=(if c > 0 { lmax } else { 0 }) {
        for m in 1..=s {
            let ln_rs = lf.ln_binom(s - 1, m - 1).expect("m <= s");
            for j_eq in 0..m {
                let ln_mf = lf.ln_binom(m - 1, j_eq).expect("j_eq <= m-1");
                for end in EndGap::ALL {
                    let (w_a, w_b) =
                        cyclic_run_weights(&lf, q, lmax, ln_n, ln_nh, nh, s, m, j_eq, end);
                    let p_cls = class_probability(
                        &lf,
                        q,
                        lmax,
                        ln_n,
                        ln_nh,
                        n,
                        nh,
                        c,
                        s,
                        m,
                        j_eq,
                        end,
                        ln_rs + ln_mf,
                    );
                    if p_cls <= 0.0 {
                        continue;
                    }
                    let entropy = entropy_bits_grouped(&[(w_a + w_b, 1), (w_b, nh - 1)]);
                    let z = w_a + w_b * nh as f64;
                    let suspect = if z > 0.0 { (w_a + w_b) / z } else { 0.0 };
                    h_star += p_cls * entropy;
                    if entropy == 0.0 {
                        p_exposed += p_cls;
                    }
                    classes.push(ClassReport {
                        class: ObservationClass::Runs {
                            on_path: s,
                            runs: m,
                            unit_gaps: j_eq,
                            end,
                        },
                        probability: p_cls,
                        entropy_bits: entropy,
                        suspect_posterior: suspect,
                    });
                }
            }
        }
    }

    Ok(AnonymityAnalysis {
        h_star,
        p_exposed,
        classes,
    })
}

/// `(w_a, w_b)` for the clean class: `w_a` is the extra weight on the
/// receiver's predecessor (the `l = 0` hypothesis), `w_b` the common weight
/// of every honest candidate.
pub(crate) fn cyclic_clean_weights(q: &[f64], lmax: usize, ln_n: f64, ln_nh: f64) -> (f64, f64) {
    let w_a = q.first().copied().unwrap_or(0.0);
    let mut w_b = 0.0;
    for (l, &ql) in q.iter().enumerate().take(lmax + 1).skip(1) {
        if ql > 0.0 {
            // one fixed slot (the observed predecessor), l-1 hidden honest
            w_b += ql * ((l as f64 - 1.0) * ln_nh - l as f64 * ln_n).exp();
        }
    }
    (w_a, w_b)
}

/// Hypothesis weights for a run class.
///
/// `w_a`: extra posterior weight on `u = pred(run₁)` from the
/// "leading gap = 0" hypothesis. `w_b`: common weight of every honest
/// candidate (the sender is unconstrained once the leading gap is ≥ 1).
#[allow(clippy::too_many_arguments)]
pub(crate) fn cyclic_run_weights(
    lf: &LnFact,
    q: &[f64],
    lmax: usize,
    ln_n: f64,
    ln_nh: f64,
    nh: usize,
    s: usize,
    m: usize,
    j_eq: usize,
    end: EndGap,
) -> (f64, f64) {
    let mut w_a = 0.0;
    let mut w_b = 0.0;
    // Enumerate branch patterns: t of the j_eq eq-looking middle gaps are
    // "wide" (length >= 2 with coinciding boundaries); the rest are true
    // unit gaps. An eq-looking end gap has the same two explanations.
    let neq_mid = m - 1 - j_eq;
    for t in 0..=j_eq {
        let ln_choose_t = lf.ln_binom(j_eq, t).expect("t <= j_eq");
        let end_branches: &[(usize, usize)] = match end {
            // (fixed honest slots, free gaps) contributed by the end gap
            EndGap::Touching => &[(0, 0)],
            EndGap::One => &[(1, 0), (2, 1)],
            EndGap::TwoPlus => &[(2, 1)],
        };
        for &(end_fixed, end_free) in end_branches {
            // fixed honest slots and free gaps excluding the leading gap
            let fixed0 = (j_eq - t) + 2 * t + 2 * neq_mid + end_fixed;
            let k0 = t + neq_mid + end_free;
            for (l, &ql) in q.iter().enumerate().take(lmax + 1).skip(s) {
                if ql == 0.0 {
                    continue;
                }
                // hypothesis A: leading gap 0 (no slots)
                let h_a = l as i64 - s as i64 - fixed0 as i64;
                if h_a >= 0 {
                    if let Some(sb) = lf.ln_stars_bars(h_a, k0) {
                        w_a += ql * (ln_choose_t + sb + h_a as f64 * ln_nh - l as f64 * ln_n).exp();
                    }
                }
                // hypothesis B: leading gap >= 1 (one fixed slot u, free excess)
                let h_b = h_a - 1;
                if h_b >= 0 {
                    if let Some(sb) = lf.ln_stars_bars(h_b, k0 + 1) {
                        w_b += ql * (ln_choose_t + sb + h_b as f64 * ln_nh - l as f64 * ln_n).exp();
                    }
                }
            }
        }
    }
    // degenerate guard: with a single honest node there are no hidden ids
    // to place, but the formulas above already handle that via nh^h.
    let _ = nh;
    (w_a, w_b)
}

/// Probability of observing a run class.
#[allow(clippy::too_many_arguments)]
fn class_probability(
    lf: &LnFact,
    q: &[f64],
    lmax: usize,
    ln_n: f64,
    ln_nh: f64,
    n: usize,
    nh: usize,
    c: usize,
    s: usize,
    m: usize,
    j_eq: usize,
    end: EndGap,
    ln_multiplicity: f64,
) -> f64 {
    let ln_c = (c as f64).ln();
    let neq_mid = m - 1 - j_eq;
    // corrections relative to nh^(l-s) per gap:
    //   eq gap, wide branch: 1/nh; neq gap: (nh-1)/nh;
    //   end One wide branch: 1/nh; end TwoPlus: (nh-1)/nh.
    let ln_neq_corr = if nh >= 2 {
        ((nh - 1) as f64 / nh as f64).ln()
    } else {
        f64::NEG_INFINITY
    };
    let ln_wide_corr = -ln_nh;
    let mut p = 0.0;
    for t in 0..=j_eq {
        let ln_choose_t = lf.ln_binom(j_eq, t).expect("t <= j_eq");
        // (min gap mass, fixed-correction, free gaps) per end branch
        let end_branches: &[(usize, f64, usize)] = match end {
            EndGap::Touching => &[(0, 0.0, 0)],
            EndGap::One => &[(1, 0.0, 0), (2, ln_wide_corr, 1)],
            EndGap::TwoPlus => &[(2, ln_neq_corr, 1)],
        };
        for &(end_min, end_corr, end_free) in end_branches {
            if end_corr == f64::NEG_INFINITY {
                continue;
            }
            let minsum = (j_eq - t) + 2 * t + 2 * neq_mid + end_min;
            let kfree = t + neq_mid + end_free + 1; // +1: leading gap, min 0
            let corr =
                ln_choose_t + t as f64 * ln_wide_corr + neq_mid as f64 * ln_neq_corr + end_corr;
            if corr == f64::NEG_INFINITY {
                continue;
            }
            for (l, &ql) in q.iter().enumerate().take(lmax + 1).skip(s) {
                if ql == 0.0 {
                    continue;
                }
                let excess = l as i64 - s as i64 - minsum as i64;
                if let Some(sb) = lf.ln_stars_bars(excess, kfree) {
                    p += ql
                        * (ln_multiplicity + corr + s as f64 * ln_c + (l - s) as f64 * ln_nh
                            - l as f64 * ln_n
                            + sb)
                            .exp();
                }
            }
        }
    }
    p * nh as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::brute::{anonymity_degree_brute, enumerate_outcomes};
    use crate::engine::posterior::sender_posterior;
    use crate::model::PathKind;

    fn model(n: usize, c: usize) -> SystemModel {
        SystemModel::with_path_kind(n, c, PathKind::Cyclic).unwrap()
    }

    #[test]
    fn cyclic_class_probabilities_sum_to_one() {
        for (n, c) in [(6usize, 1usize), (6, 2), (8, 3), (5, 0)] {
            for dist in [
                PathLengthDist::fixed(3),
                PathLengthDist::uniform(0, 5).unwrap(),
                PathLengthDist::geometric(0.6, 6).unwrap(),
            ] {
                let a = analysis(&model(n, c), &dist).unwrap();
                let total: f64 = a.classes.iter().map(|r| r.probability).sum();
                assert!(
                    (total - 1.0).abs() < 1e-10,
                    "n={n} c={c} dist={dist}: total={total}"
                );
            }
        }
    }

    #[test]
    fn cyclic_engine_matches_brute_force() {
        for (n, c) in [(4usize, 1usize), (5, 1), (5, 2), (4, 2)] {
            for dist in [
                PathLengthDist::fixed(1),
                PathLengthDist::fixed(3),
                PathLengthDist::uniform(0, 3).unwrap(),
                PathLengthDist::uniform(1, 4).unwrap(),
                PathLengthDist::two_point(1, 0.25, 3).unwrap(),
            ] {
                let m = model(n, c);
                let brute = anonymity_degree_brute(&m, &dist).unwrap();
                let exact = anonymity_degree(&m, &dist).unwrap();
                assert!(
                    (brute - exact).abs() < 1e-10,
                    "n={n} c={c} dist={dist}: brute={brute} exact={exact}"
                );
            }
        }
    }

    #[test]
    fn cyclic_posterior_matches_brute_force() {
        for (n, c) in [(4usize, 1usize), (5, 2)] {
            let m = model(n, c);
            let compromised: Vec<bool> = (0..n).map(|i| i < c).collect();
            for dist in [
                PathLengthDist::uniform(0, 3).unwrap(),
                PathLengthDist::uniform(1, 4).unwrap(),
            ] {
                let outcomes = enumerate_outcomes(&m, &dist).unwrap();
                for (obs, masses) in &outcomes {
                    let z: f64 = masses.iter().sum();
                    let got = sender_posterior(&m, &dist, obs, &compromised).unwrap();
                    for i in 0..n {
                        assert!(
                            (masses[i] / z - got[i]).abs() < 1e-10,
                            "n={n} c={c} dist={dist} obs={obs:?} node {i}: \
                             brute={} engine={}",
                            masses[i] / z,
                            got[i]
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn cyclic_paths_leak_less_than_simple_at_same_length() {
        // On cyclic paths observed intermediates stay candidates, so the
        // posterior is flatter than for simple paths.
        let dist = PathLengthDist::fixed(5);
        let m_cyc = model(30, 2);
        let m_sim = SystemModel::new(30, 2).unwrap();
        let h_cyc = anonymity_degree(&m_cyc, &dist).unwrap();
        let h_sim = crate::engine::simple::anonymity_degree(&m_sim, &dist).unwrap();
        assert!(h_cyc > h_sim, "cyclic={h_cyc} simple={h_sim}");
    }

    #[test]
    fn cyclic_supports_paths_longer_than_n() {
        let m = model(5, 1);
        let dist = PathLengthDist::fixed(12);
        let h = anonymity_degree(&m, &dist).unwrap();
        assert!(h > 0.0 && h <= 5f64.log2());
    }
}
