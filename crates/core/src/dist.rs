//! Path-length distributions (Section 3.2 of the paper).
//!
//! A rerouting strategy is characterized by the probability distribution of
//! the number of intermediate nodes on the rerouting path. Fixed-length
//! strategies are the degenerate case; the paper's evaluation sweeps
//! uniform, two-point, and optimized distributions.

use crate::error::{Error, Result};
use rand::Rng;

/// A probability distribution over rerouting path lengths.
///
/// The support is `0..=max_len()`, where a length of `0` means the sender
/// transmits directly to the receiver (used by the paper's `U(0, L)`
/// strategies in Figure 4(d)).
///
/// # Invariants
///
/// * every entry is finite and nonnegative,
/// * the entries sum to 1 (enforced by normalization on construction),
/// * the last entry is nonzero (the vector is trimmed).
///
/// # Examples
///
/// ```
/// use anonroute_core::PathLengthDist;
///
/// let fixed = PathLengthDist::fixed(5);
/// assert_eq!(fixed.mean(), 5.0);
///
/// let uniform = PathLengthDist::uniform(2, 8)?;
/// assert_eq!(uniform.mean(), 5.0);
/// assert!(uniform.variance() > 0.0);
/// # Ok::<(), anonroute_core::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PathLengthDist {
    /// `pmf[l]` = P[L = l].
    pmf: Vec<f64>,
}

impl PathLengthDist {
    /// The fixed-length strategy `F(l)`: every path has exactly `l`
    /// intermediate nodes.
    pub fn fixed(l: usize) -> Self {
        let mut pmf = vec![0.0; l + 1];
        pmf[l] = 1.0;
        PathLengthDist { pmf }
    }

    /// The uniform strategy `U(a, b)`: the length is drawn uniformly from
    /// the integers `a..=b`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidDistribution`] if `a > b`.
    pub fn uniform(a: usize, b: usize) -> Result<Self> {
        if a > b {
            return Err(Error::InvalidDistribution(format!(
                "uniform bounds out of order: a={a} > b={b}"
            )));
        }
        let mut pmf = vec![0.0; b + 1];
        let p = 1.0 / (b - a + 1) as f64;
        for slot in pmf.iter_mut().take(b + 1).skip(a) {
            *slot = p;
        }
        Ok(PathLengthDist { pmf })
    }

    /// A two-point strategy: length `l1` with probability `p`, length `l2`
    /// with probability `1 - p` (Theorem 2's family).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidDistribution`] if `p` is outside `[0, 1]` or
    /// not finite.
    pub fn two_point(l1: usize, p: f64, l2: usize) -> Result<Self> {
        if !p.is_finite() || !(0.0..=1.0).contains(&p) {
            return Err(Error::InvalidDistribution(format!(
                "two-point weight must lie in [0, 1], got {p}"
            )));
        }
        let max = l1.max(l2);
        let mut pmf = vec![0.0; max + 1];
        pmf[l1] += p;
        pmf[l2] += 1.0 - p;
        Self::from_pmf(pmf)
    }

    /// The Crowds-style geometric strategy: after the first intermediate
    /// node, each node forwards to another intermediate with probability
    /// `forward_prob` and to the receiver otherwise, so
    /// `P[L = k] = (1 - pf) · pf^(k-1)` for `k ≥ 1`.
    ///
    /// The distribution is truncated at `lmax` and renormalized; the
    /// truncated tail mass is folded into `lmax` so that the expected length
    /// of the modelled strategy is preserved as closely as possible.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidDistribution`] if `forward_prob` is outside
    /// `[0, 1)` or `lmax == 0`.
    pub fn geometric(forward_prob: f64, lmax: usize) -> Result<Self> {
        if !forward_prob.is_finite() || !(0.0..1.0).contains(&forward_prob) {
            return Err(Error::InvalidDistribution(format!(
                "forwarding probability must lie in [0, 1), got {forward_prob}"
            )));
        }
        if lmax == 0 {
            return Err(Error::InvalidDistribution(
                "geometric strategy needs at least one intermediate node".into(),
            ));
        }
        let pf = forward_prob;
        let mut pmf = vec![0.0; lmax + 1];
        let mut tail = 1.0;
        for (k, slot) in pmf.iter_mut().enumerate().take(lmax).skip(1) {
            let p = (1.0 - pf) * pf.powi(k as i32 - 1);
            *slot = p;
            tail -= p;
        }
        pmf[lmax] = tail.max(0.0);
        Self::from_pmf(pmf)
    }

    /// Builds a distribution from raw probability masses indexed by length.
    ///
    /// The vector is normalized to sum to 1 and trailing zero mass is
    /// trimmed.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidDistribution`] if any entry is negative or
    /// non-finite, or if the total mass is zero.
    pub fn from_pmf(pmf: Vec<f64>) -> Result<Self> {
        if pmf.iter().any(|&p| !p.is_finite() || p < 0.0) {
            return Err(Error::InvalidDistribution(
                "probability masses must be finite and nonnegative".into(),
            ));
        }
        let total: f64 = pmf.iter().sum();
        if total <= 0.0 {
            return Err(Error::InvalidDistribution("total mass is zero".into()));
        }
        let mut pmf: Vec<f64> = pmf.into_iter().map(|p| p / total).collect();
        while pmf.len() > 1 && *pmf.last().unwrap() == 0.0 {
            pmf.pop();
        }
        Ok(PathLengthDist { pmf })
    }

    /// The probability mass function, indexed by path length.
    #[inline]
    pub fn pmf(&self) -> &[f64] {
        &self.pmf
    }

    /// `P[L = l]` (zero outside the stored support).
    #[inline]
    pub fn prob(&self, l: usize) -> f64 {
        self.pmf.get(l).copied().unwrap_or(0.0)
    }

    /// Largest length with nonzero mass.
    #[inline]
    pub fn max_len(&self) -> usize {
        self.pmf.len() - 1
    }

    /// Smallest length with nonzero mass.
    pub fn min_len(&self) -> usize {
        self.pmf
            .iter()
            .position(|&p| p > 0.0)
            .expect("invariant: distribution has positive total mass")
    }

    /// Expected path length `E[L]`.
    pub fn mean(&self) -> f64 {
        self.pmf
            .iter()
            .enumerate()
            .map(|(l, &p)| l as f64 * p)
            .sum()
    }

    /// Variance of the path length.
    pub fn variance(&self) -> f64 {
        let mean = self.mean();
        self.pmf
            .iter()
            .enumerate()
            .map(|(l, &p)| (l as f64 - mean).powi(2) * p)
            .sum()
    }

    /// Tail probability `P[L ≥ l]`.
    pub fn tail(&self, l: usize) -> f64 {
        self.pmf.iter().skip(l).sum()
    }

    /// Expected excess `E[(L - k)⁺]`, the mean number of intermediate nodes
    /// beyond the first `k`.
    pub fn expected_excess(&self, k: usize) -> f64 {
        self.pmf
            .iter()
            .enumerate()
            .skip(k + 1)
            .map(|(l, &p)| (l - k) as f64 * p)
            .sum()
    }

    /// Draws a path length.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let mut u: f64 = rng.gen();
        for (l, &p) in self.pmf.iter().enumerate() {
            u -= p;
            if u <= 0.0 {
                return l;
            }
        }
        self.max_len()
    }
}

impl std::fmt::Display for PathLengthDist {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let support: Vec<usize> = self
            .pmf
            .iter()
            .enumerate()
            .filter(|(_, &p)| p > 0.0)
            .map(|(l, _)| l)
            .collect();
        if support.len() == 1 {
            write!(f, "F({})", support[0])
        } else {
            write!(
                f,
                "dist[{}..={}] mean={:.3}",
                support[0],
                support[support.len() - 1],
                self.mean()
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn fixed_is_point_mass() {
        let d = PathLengthDist::fixed(4);
        assert_eq!(d.max_len(), 4);
        assert_eq!(d.min_len(), 4);
        assert!(close(d.prob(4), 1.0));
        assert!(close(d.mean(), 4.0));
        assert!(close(d.variance(), 0.0));
        assert!(close(d.tail(4), 1.0));
        assert!(close(d.tail(5), 0.0));
    }

    #[test]
    fn fixed_zero_length_allowed() {
        let d = PathLengthDist::fixed(0);
        assert_eq!(d.max_len(), 0);
        assert!(close(d.mean(), 0.0));
    }

    #[test]
    fn uniform_statistics() {
        let d = PathLengthDist::uniform(2, 8).unwrap();
        assert!(close(d.mean(), 5.0));
        // discrete uniform variance on k points: (k²-1)/12 with k = 7
        assert!(close(d.variance(), 48.0 / 12.0));
        assert!(close(d.prob(2), 1.0 / 7.0));
        assert!(close(d.prob(1), 0.0));
        assert!(close(d.tail(3), 6.0 / 7.0));
    }

    #[test]
    fn uniform_rejects_inverted_bounds() {
        assert!(PathLengthDist::uniform(5, 4).is_err());
    }

    #[test]
    fn uniform_single_point_equals_fixed() {
        assert_eq!(
            PathLengthDist::uniform(3, 3).unwrap(),
            PathLengthDist::fixed(3)
        );
    }

    #[test]
    fn two_point_mass_and_mean() {
        let d = PathLengthDist::two_point(3, 0.25, 7).unwrap();
        assert!(close(d.prob(3), 0.25));
        assert!(close(d.prob(7), 0.75));
        assert!(close(d.mean(), 6.0));
    }

    #[test]
    fn two_point_same_support_collapses() {
        let d = PathLengthDist::two_point(4, 0.3, 4).unwrap();
        assert_eq!(d, PathLengthDist::fixed(4));
    }

    #[test]
    fn two_point_rejects_bad_weight() {
        assert!(PathLengthDist::two_point(1, -0.1, 2).is_err());
        assert!(PathLengthDist::two_point(1, 1.5, 2).is_err());
        assert!(PathLengthDist::two_point(1, f64::NAN, 2).is_err());
    }

    #[test]
    fn geometric_matches_crowds_formula() {
        let pf = 0.75;
        let d = PathLengthDist::geometric(pf, 200).unwrap();
        assert!(close(d.prob(0), 0.0));
        assert!((d.prob(1) - 0.25).abs() < 1e-12);
        assert!((d.prob(2) - 0.25 * 0.75).abs() < 1e-12);
        // E[L] = 1/(1-pf) = 4 (truncation error is tiny at lmax = 200)
        assert!((d.mean() - 4.0).abs() < 1e-6);
    }

    #[test]
    fn geometric_truncation_mass_conserved() {
        let d = PathLengthDist::geometric(0.9, 5).unwrap();
        let total: f64 = d.pmf().iter().sum();
        assert!(close(total, 1.0));
        // tail folded into the last bucket
        assert!(d.prob(5) > 0.9f64.powi(4) * 0.1);
    }

    #[test]
    fn geometric_rejects_bad_params() {
        assert!(PathLengthDist::geometric(1.0, 10).is_err());
        assert!(PathLengthDist::geometric(-0.1, 10).is_err());
        assert!(PathLengthDist::geometric(0.5, 0).is_err());
    }

    #[test]
    fn from_pmf_normalizes_and_trims() {
        let d = PathLengthDist::from_pmf(vec![2.0, 2.0, 0.0, 0.0]).unwrap();
        assert_eq!(d.max_len(), 1);
        assert!(close(d.prob(0), 0.5));
        assert!(close(d.prob(1), 0.5));
    }

    #[test]
    fn from_pmf_rejects_invalid() {
        assert!(PathLengthDist::from_pmf(vec![0.0, -1.0]).is_err());
        assert!(PathLengthDist::from_pmf(vec![0.0, 0.0]).is_err());
        assert!(PathLengthDist::from_pmf(vec![f64::INFINITY]).is_err());
    }

    #[test]
    fn expected_excess_consistency() {
        let d = PathLengthDist::uniform(1, 9).unwrap();
        // E[(L-0)+] = E[L]
        assert!(close(d.expected_excess(0), d.mean()));
        // E[(L-2)+] = Σ_{l=3..9} (l-2)/9 = 28/9
        assert!(close(d.expected_excess(2), 28.0 / 9.0));
        // identity: E[(L-k)+] = Σ_{j>k} P[L ≥ j]
        let direct: f64 = (3..=9).map(|j| d.tail(j)).sum();
        assert!(close(d.expected_excess(2), direct));
    }

    #[test]
    fn sampling_matches_pmf() {
        let d = PathLengthDist::uniform(1, 4).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 5];
        let trials = 40_000;
        for _ in 0..trials {
            counts[d.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[0], 0);
        for &c in &counts[1..] {
            let freq = c as f64 / trials as f64;
            assert!((freq - 0.25).abs() < 0.02, "freq {freq}");
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(PathLengthDist::fixed(5).to_string(), "F(5)");
        let u = PathLengthDist::uniform(2, 8).unwrap();
        assert!(u.to_string().contains("2..=8"));
    }
}
