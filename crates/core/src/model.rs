//! The system and threat model of Sections 3–4 of the paper.

use crate::dist::PathLengthDist;
use crate::error::{Error, Result};

/// Whether rerouting paths may revisit nodes (Section 3.2).
///
/// * [`PathKind::Simple`] — no cycles: the sender and all intermediate
///   nodes are distinct. Intermediates are a uniformly random sequence of
///   distinct nodes drawn from the other `n - 1` nodes. This is the model
///   behind all numeric results in the paper.
/// * [`PathKind::Cyclic`] — "complicated" paths: every hop is chosen
///   independently and uniformly from all `n` nodes, so nodes (including
///   the sender) may appear multiple times. This is the Crowds /
///   Onion Routing II selection rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PathKind {
    /// Distinct intermediate nodes (no cycles).
    #[default]
    Simple,
    /// Independently sampled hops (cycles allowed).
    Cyclic,
}

impl std::fmt::Display for PathKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PathKind::Simple => write!(f, "simple"),
            PathKind::Cyclic => write!(f, "cyclic"),
        }
    }
}

/// The clique-topology system model (Section 3.1) plus the passive threat
/// model (Section 4).
///
/// A system has `n` member nodes that all can reach each other directly.
/// The receiver is *not* one of the `n` nodes and is always assumed
/// compromised. Of the `n` members, `c` are compromised; their agents
/// report `(time, predecessor, successor)` for every message they forward
/// and report silence otherwise. The sender is a priori uniform over all
/// `n` members (a compromised member may itself be the sender — the
/// paper's "local eavesdropper" case, in which the adversary learns the
/// sender trivially).
///
/// # Examples
///
/// ```
/// use anonroute_core::SystemModel;
/// let model = SystemModel::new(100, 1)?;
/// assert_eq!(model.honest(), 99);
/// assert!((model.max_entropy_bits() - 100f64.log2()).abs() < 1e-12);
/// # Ok::<(), anonroute_core::Error>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SystemModel {
    n: usize,
    c: usize,
    path_kind: PathKind,
}

impl SystemModel {
    /// Creates a model with `n` member nodes of which `c` are compromised,
    /// using simple (cycle-free) paths.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidModel`] if `n == 0` or `c > n`.
    pub fn new(n: usize, c: usize) -> Result<Self> {
        if n == 0 {
            return Err(Error::InvalidModel(
                "system must have at least one node".into(),
            ));
        }
        if c > n {
            return Err(Error::InvalidModel(format!(
                "compromised count c={c} exceeds system size n={n}"
            )));
        }
        Ok(SystemModel {
            n,
            c,
            path_kind: PathKind::Simple,
        })
    }

    /// Creates a model with an explicit [`PathKind`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`SystemModel::new`].
    pub fn with_path_kind(n: usize, c: usize, path_kind: PathKind) -> Result<Self> {
        let mut m = Self::new(n, c)?;
        m.path_kind = path_kind;
        Ok(m)
    }

    /// Total number of member nodes `n` (the receiver is extra).
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of compromised member nodes `c`.
    #[inline]
    pub fn c(&self) -> usize {
        self.c
    }

    /// Number of honest member nodes, `n - c`.
    #[inline]
    pub fn honest(&self) -> usize {
        self.n - self.c
    }

    /// The path-construction rule.
    #[inline]
    pub fn path_kind(&self) -> PathKind {
        self.path_kind
    }

    /// The information-theoretic ceiling `log2 n` on the anonymity degree
    /// (paper, Section 5.1): with no information, every one of the `n`
    /// nodes is an equally likely sender.
    #[inline]
    pub fn max_entropy_bits(&self) -> f64 {
        (self.n as f64).log2()
    }

    /// Checks that a path-length distribution is compatible with this
    /// model: simple paths cannot be longer than `n - 1` (there are only
    /// `n - 1` other nodes to visit).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidDistribution`] on support overflow.
    pub fn validate_dist(&self, dist: &PathLengthDist) -> Result<()> {
        if self.path_kind == PathKind::Simple && dist.max_len() > self.n - 1 {
            // mass beyond n-1 would be unrealizable
            let overflow: f64 = dist.pmf().iter().skip(self.n).sum();
            if overflow > 0.0 {
                return Err(Error::InvalidDistribution(format!(
                    "simple paths in an n={} system support at most {} intermediate nodes, \
                     but the distribution places mass {overflow:.3e} beyond that",
                    self.n,
                    self.n - 1,
                )));
            }
        }
        Ok(())
    }
}

impl std::fmt::Display for SystemModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SystemModel(n={}, c={}, {})",
            self.n, self.c, self.path_kind
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_validates() {
        assert!(SystemModel::new(0, 0).is_err());
        assert!(SystemModel::new(5, 6).is_err());
        assert!(SystemModel::new(5, 5).is_ok());
        assert!(SystemModel::new(1, 0).is_ok());
    }

    #[test]
    fn accessors() {
        let m = SystemModel::new(100, 3).unwrap();
        assert_eq!(m.n(), 100);
        assert_eq!(m.c(), 3);
        assert_eq!(m.honest(), 97);
        assert_eq!(m.path_kind(), PathKind::Simple);
    }

    #[test]
    fn max_entropy_is_log2_n() {
        let m = SystemModel::new(64, 0).unwrap();
        assert!((m.max_entropy_bits() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn validate_dist_rejects_overlong_simple_paths() {
        let m = SystemModel::new(5, 1).unwrap();
        let ok = PathLengthDist::fixed(4);
        let bad = PathLengthDist::fixed(5);
        assert!(m.validate_dist(&ok).is_ok());
        assert!(m.validate_dist(&bad).is_err());
    }

    #[test]
    fn validate_dist_allows_long_cyclic_paths() {
        let m = SystemModel::with_path_kind(5, 1, PathKind::Cyclic).unwrap();
        let long = PathLengthDist::fixed(20);
        assert!(m.validate_dist(&long).is_ok());
    }

    #[test]
    fn display_is_informative() {
        let m = SystemModel::with_path_kind(10, 2, PathKind::Cyclic).unwrap();
        let s = m.to_string();
        assert!(s.contains("n=10") && s.contains("c=2") && s.contains("cyclic"));
    }
}
