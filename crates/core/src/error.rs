//! Error types for `anonroute-core`.

use std::fmt;

/// Errors returned by fallible operations in this crate.
///
/// All variants carry a human-readable description of the violated
/// requirement. The error messages are lowercase without trailing
/// punctuation, per Rust API guidelines.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A system-model parameter is invalid (e.g. `c > n`, or `n == 0`).
    InvalidModel(String),
    /// A path-length distribution is invalid (negative mass, zero total
    /// mass, non-finite entries, or support incompatible with the model).
    InvalidDistribution(String),
    /// An optimization routine was given inconsistent constraints or
    /// failed to make progress.
    Optimization(String),
    /// A raw adversary observation could not be parsed into a valid
    /// observation signature.
    InvalidObservation(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidModel(msg) => write!(f, "invalid system model: {msg}"),
            Error::InvalidDistribution(msg) => {
                write!(f, "invalid path-length distribution: {msg}")
            }
            Error::Optimization(msg) => write!(f, "optimization failed: {msg}"),
            Error::InvalidObservation(msg) => write!(f, "invalid observation: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            Error::InvalidModel("n must be positive".into()),
            Error::InvalidDistribution("mass sums to zero".into()),
            Error::Optimization("no feasible point".into()),
            Error::InvalidObservation("runs out of order".into()),
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
