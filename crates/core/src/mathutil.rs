//! Numeric helpers shared by the analysis engines.
//!
//! The exact engines work with ratios of *falling factorials* (numbers of
//! ordered node arrangements). For systems of realistic size these counts
//! overflow `f64` quickly, so everything is carried in log-space and only
//! ratios are exponentiated.

/// Precomputed table of natural-log factorials, `ln(k!)` for `k = 0..=max`.
///
/// # Examples
///
/// ```
/// use anonroute_core::mathutil::LnFact;
/// let lf = LnFact::new(10);
/// assert!((lf.ln_fact(5) - 120f64.ln()).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct LnFact {
    table: Vec<f64>,
}

impl LnFact {
    /// Builds a table covering `0..=max`.
    pub fn new(max: usize) -> Self {
        let mut table = Vec::with_capacity(max + 1);
        table.push(0.0);
        let mut acc = 0.0f64;
        for k in 1..=max {
            acc += (k as f64).ln();
            table.push(acc);
        }
        LnFact { table }
    }

    /// `ln(k!)`.
    ///
    /// # Panics
    ///
    /// Panics if `k` exceeds the table size chosen at construction.
    #[inline]
    pub fn ln_fact(&self, k: usize) -> f64 {
        self.table[k]
    }

    /// Log of the falling factorial `a · (a-1) ··· (a-k+1)`, i.e. the number
    /// of ordered selections of `k` distinct items from `a`.
    ///
    /// Returns `None` when `k > a` (the count is zero).
    #[inline]
    pub fn ln_falling(&self, a: usize, k: usize) -> Option<f64> {
        if k > a {
            None
        } else {
            Some(self.ln_fact(a) - self.ln_fact(a - k))
        }
    }

    /// Log of the binomial coefficient `C(a, b)`.
    ///
    /// Returns `None` when `b > a` (the count is zero).
    #[inline]
    pub fn ln_binom(&self, a: usize, b: usize) -> Option<f64> {
        if b > a {
            None
        } else {
            Some(self.ln_fact(a) - self.ln_fact(b) - self.ln_fact(a - b))
        }
    }

    /// Log of the number of ways to write `total` as an ordered sum of
    /// `parts` nonnegative integers (stars and bars): `C(total+parts-1,
    /// parts-1)`.
    ///
    /// Returns `None` when the count is zero (`total < 0`, or `parts == 0`
    /// with `total != 0`).
    #[inline]
    pub fn ln_stars_bars(&self, total: i64, parts: usize) -> Option<f64> {
        if total < 0 {
            return None;
        }
        if parts == 0 {
            return if total == 0 { Some(0.0) } else { None };
        }
        self.ln_binom(total as usize + parts - 1, parts - 1)
    }

    /// Largest `k` covered by the table.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.table.len() - 1
    }
}

/// Numerically stable `ln(Σ exp(x_i))`. Returns `f64::NEG_INFINITY` for an
/// empty slice.
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    let m = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if !m.is_finite() {
        return m;
    }
    let s: f64 = xs.iter().map(|x| (x - m).exp()).sum();
    m + s.ln()
}

/// Binary entropy `h(p) = -p·log2(p) - (1-p)·log2(1-p)` in bits.
///
/// Returns `0` at the endpoints `p ∈ {0, 1}`.
///
/// # Panics
///
/// Panics in debug builds if `p` is outside `[0, 1]`.
pub fn binary_entropy_bits(p: f64) -> f64 {
    debug_assert!((-1e-12..=1.0 + 1e-12).contains(&p), "p out of range: {p}");
    let p = p.clamp(0.0, 1.0);
    let mut h = 0.0;
    if p > 0.0 {
        h -= p * p.log2();
    }
    if p < 1.0 {
        h -= (1.0 - p) * (1.0 - p).log2();
    }
    h
}

/// Shannon entropy in bits of a set of *weighted candidate groups*.
///
/// Each `(weight, count)` pair describes `count` candidates that each carry
/// unnormalized probability mass `weight`. The weights are normalized
/// internally; zero-weight or zero-count groups are ignored.
///
/// Returns `0` when the total mass is zero (degenerate observation).
pub fn entropy_bits_grouped(groups: &[(f64, usize)]) -> f64 {
    let z: f64 = groups.iter().map(|&(w, k)| w * k as f64).sum();
    if z <= 0.0 {
        return 0.0;
    }
    let mut h = 0.0;
    for &(w, k) in groups {
        if w > 0.0 && k > 0 {
            let p = w / z;
            h -= (k as f64) * p * p.log2();
        }
    }
    h
}

/// Shannon entropy in bits of an unnormalized nonnegative weight vector.
pub fn entropy_bits(weights: &[f64]) -> f64 {
    let z: f64 = weights.iter().sum();
    if z <= 0.0 {
        return 0.0;
    }
    weights
        .iter()
        .filter(|&&w| w > 0.0)
        .map(|&w| {
            let p = w / z;
            -p * p.log2()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-10
    }

    #[test]
    fn ln_fact_small_values() {
        let lf = LnFact::new(12);
        assert!(close(lf.ln_fact(0), 0.0));
        assert!(close(lf.ln_fact(1), 0.0));
        assert!(close(lf.ln_fact(4), 24f64.ln()));
        assert!(close(lf.ln_fact(12), 479_001_600f64.ln()));
    }

    #[test]
    fn ln_falling_matches_direct_product() {
        let lf = LnFact::new(30);
        // 10·9·8 = 720
        assert!(close(lf.ln_falling(10, 3).unwrap(), 720f64.ln()));
        // k = 0 → empty product = 1
        assert!(close(lf.ln_falling(7, 0).unwrap(), 0.0));
        // k = a → a!
        assert!(close(lf.ln_falling(5, 5).unwrap(), 120f64.ln()));
        // k > a → zero count
        assert!(lf.ln_falling(3, 4).is_none());
    }

    #[test]
    fn ln_binom_matches_pascal() {
        let lf = LnFact::new(20);
        assert!(close(lf.ln_binom(10, 3).unwrap(), 120f64.ln()));
        assert!(close(lf.ln_binom(10, 0).unwrap(), 0.0));
        assert!(close(lf.ln_binom(10, 10).unwrap(), 0.0));
        assert!(lf.ln_binom(4, 5).is_none());
    }

    #[test]
    fn stars_bars_counts() {
        let lf = LnFact::new(40);
        // 5 into 3 parts: C(7,2) = 21
        assert!(close(lf.ln_stars_bars(5, 3).unwrap(), 21f64.ln()));
        // 0 into k parts: exactly 1 way
        assert!(close(lf.ln_stars_bars(0, 4).unwrap(), 0.0));
        // 0 into 0 parts: 1 way; n>0 into 0 parts: none
        assert!(close(lf.ln_stars_bars(0, 0).unwrap(), 0.0));
        assert!(lf.ln_stars_bars(3, 0).is_none());
        assert!(lf.ln_stars_bars(-1, 2).is_none());
    }

    #[test]
    fn stars_bars_brute_force_agreement() {
        let lf = LnFact::new(64);
        for parts in 1usize..5 {
            for total in 0i64..8 {
                let mut count = 0u64;
                // enumerate compositions by recursion
                fn rec(remaining: i64, parts_left: usize, count: &mut u64) {
                    if parts_left == 0 {
                        if remaining == 0 {
                            *count += 1;
                        }
                        return;
                    }
                    for x in 0..=remaining {
                        rec(remaining - x, parts_left - 1, count);
                    }
                }
                rec(total, parts, &mut count);
                let got = lf.ln_stars_bars(total, parts).unwrap().exp();
                assert!(
                    (got - count as f64).abs() < 1e-6,
                    "total={total} parts={parts}: got {got}, want {count}"
                );
            }
        }
    }

    #[test]
    fn log_sum_exp_basics() {
        assert!(close(log_sum_exp(&[0.0, 0.0]), 2f64.ln()));
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
        // stability with large magnitudes
        assert!(close(log_sum_exp(&[1000.0, 1000.0]), 1000.0 + 2f64.ln()));
    }

    #[test]
    fn binary_entropy_endpoints_and_midpoint() {
        assert!(close(binary_entropy_bits(0.0), 0.0));
        assert!(close(binary_entropy_bits(1.0), 0.0));
        assert!(close(binary_entropy_bits(0.5), 1.0));
    }

    #[test]
    fn entropy_grouped_uniform_is_log2() {
        // 8 equal candidates → 3 bits
        assert!(close(entropy_bits_grouped(&[(0.25, 8)]), 3.0));
        // grouping must not matter
        assert!(close(
            entropy_bits_grouped(&[(1.0, 4), (1.0, 4)]),
            entropy_bits_grouped(&[(7.0, 8)])
        ));
    }

    #[test]
    fn entropy_grouped_degenerate() {
        assert!(close(entropy_bits_grouped(&[(0.0, 5)]), 0.0));
        assert!(close(entropy_bits_grouped(&[]), 0.0));
        assert!(close(entropy_bits_grouped(&[(3.0, 1)]), 0.0));
    }

    #[test]
    fn entropy_vec_matches_grouped() {
        let v = [0.5, 0.25, 0.25];
        assert!(close(entropy_bits(&v), 1.5));
        assert!(close(
            entropy_bits(&v),
            entropy_bits_grouped(&[(0.5, 1), (0.25, 2)])
        ));
    }
}
