//! Chunked fold kernels for the hot multiply-accumulate loops.
//!
//! The intersection accumulator ([`crate::epochs::IntersectionPosterior`])
//! and the posterior normalization passes spend their time in three tiny
//! loops: elementwise multiply, ordered sum, and elementwise divide. This
//! module provides them as standalone kernels written so the compiler can
//! auto-vectorize the elementwise passes (fixed-width `chunks_exact`
//! bodies, no indexed bounds checks in the inner loop) without touching
//! the workspace-wide determinism contract.
//!
//! ## Determinism boundary
//!
//! Every seeded artifact in this workspace (campaign JSONL/CSV, golden
//! files, the four-engine conformance cells) is pinned **byte-identical
//! per seed at any thread count**, so floating-point *summation order* is
//! part of the public contract:
//!
//! * [`mul_in_place`] and [`div_in_place`] are elementwise — each output
//!   lane depends on exactly one input lane, so chunking cannot change any
//!   result bit. These are the only passes that may be chunked, unrolled,
//!   or vectorized.
//! * [`sum_ordered`] MUST remain a strict left-to-right reduction with a
//!   single accumulator. Pairwise/tree/SIMD-lane reductions produce
//!   different (often more accurate!) bits and would silently break every
//!   golden file. Do not "optimize" it into a chunked reduction, and do
//!   not let a parallel runtime split it: the sum must not depend on
//!   thread count.
//!
//! Splitting the historical interleaved `w *= p; total += w` fold into a
//! multiply pass followed by an ordered sum is bit-identical: the products
//! are the same values, and the sum visits them in the same order.

/// Elementwise `dst[i] *= src[i]`.
///
/// Chunked so the inner loop has no bounds checks and auto-vectorizes;
/// safe to reorder freely because each lane is independent.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mul_in_place(dst: &mut [f64], src: &[f64]) {
    assert_eq!(dst.len(), src.len(), "kernel operands must match in length");
    const LANES: usize = 8;
    let mut d = dst.chunks_exact_mut(LANES);
    let mut s = src.chunks_exact(LANES);
    for (dc, sc) in d.by_ref().zip(s.by_ref()) {
        for k in 0..LANES {
            dc[k] *= sc[k];
        }
    }
    for (x, &y) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *x *= y;
    }
}

/// Elementwise `xs[i] /= divisor`.
///
/// Kept as a division (not a multiply by the reciprocal): the historical
/// renormalization divides, and `x / t` and `x * (1/t)` differ in the
/// last bit often enough to break byte-pinned artifacts.
pub fn div_in_place(xs: &mut [f64], divisor: f64) {
    const LANES: usize = 8;
    let mut it = xs.chunks_exact_mut(LANES);
    for chunk in it.by_ref() {
        for x in chunk {
            *x /= divisor;
        }
    }
    for x in it.into_remainder() {
        *x /= divisor;
    }
}

/// Strict left-to-right sum with a single accumulator starting at `0.0`.
///
/// This is the determinism-critical reduction — see the module docs. Its
/// bits equal those of the naive `for` loop every caller used to inline,
/// including the identity `acc + 0.0 == acc` for nonnegative
/// accumulators, which is what makes sparse iteration over the surviving
/// support bit-identical to the dense scan.
#[inline]
pub fn sum_ordered(xs: &[f64]) -> f64 {
    let mut acc = 0.0;
    for &x in xs {
        acc += x;
    }
    acc
}

/// Whether every entry is a finite, nonnegative probability weight — the
/// validation predicate of the fold path. Order-independent, so it is
/// free to chunk.
pub fn is_valid_weights(xs: &[f64]) -> bool {
    const LANES: usize = 8;
    let mut it = xs.chunks_exact(LANES);
    for chunk in it.by_ref() {
        let mut ok = true;
        for &x in chunk {
            ok &= x.is_finite() && x >= 0.0;
        }
        if !ok {
            return false;
        }
    }
    it.remainder().iter().all(|&x| x.is_finite() && x >= 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mul_matches_scalar_loop_bitwise() {
        let a: Vec<f64> = (0..37).map(|i| 0.1 + i as f64 * 0.37).collect();
        let b: Vec<f64> = (0..37).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let mut chunked = a.clone();
        mul_in_place(&mut chunked, &b);
        let scalar: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x * y).collect();
        assert_eq!(
            chunked.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            scalar.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn div_matches_scalar_loop_bitwise() {
        let mut xs: Vec<f64> = (0..19).map(|i| 0.3 + i as f64).collect();
        let scalar: Vec<f64> = xs.iter().map(|x| x / 0.7).collect();
        div_in_place(&mut xs, 0.7);
        assert_eq!(
            xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            scalar.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn sum_is_strictly_left_to_right() {
        // an order-sensitive sequence: reassociating changes the bits
        let xs = [1.0e16, 1.0, -1.0e16, 1.0, 0.1, 1e-9];
        let mut acc = 0.0;
        for &x in &xs {
            acc += x;
        }
        assert_eq!(sum_ordered(&xs).to_bits(), acc.to_bits());
    }

    #[test]
    fn zeros_are_additive_identity_for_nonnegative_sums() {
        // the sparse-iteration contract: dropping exact zeros from a
        // nonnegative sum leaves the accumulator bits unchanged
        let dense = [0.0, 0.125, 0.0, 0.375, 0.0, 0.5, 0.0];
        let sparse = [0.125, 0.375, 0.5];
        assert_eq!(
            sum_ordered(&dense).to_bits(),
            sum_ordered(&sparse).to_bits()
        );
    }

    #[test]
    fn validation_predicate_flags_bad_entries() {
        let good: Vec<f64> = (0..33).map(|i| i as f64 * 0.01).collect();
        assert!(is_valid_weights(&good));
        let mut bad = good.clone();
        bad[20] = -0.5;
        assert!(!is_valid_weights(&bad));
        bad[20] = f64::NAN;
        assert!(!is_valid_weights(&bad));
        bad[20] = f64::INFINITY;
        assert!(!is_valid_weights(&bad));
        assert!(is_valid_weights(&[]));
    }
}
