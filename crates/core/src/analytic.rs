//! Closed-form anonymity degrees for the paper's special cases
//! (Section 5.3, Theorems 1–3), plus the general single-compromised-node
//! closed form they all specialize.
//!
//! All formulas assume the paper's default setting: **simple paths** and
//! **exactly one compromised node** (`c = 1`). They are implemented
//! independently of [`crate::engine`] — the test suites of both modules
//! check them against each other and against brute-force enumeration,
//! which pins down the re-derivation of the paper's OCR-garbled equations.
//!
//! # The five observation classes for `c = 1`
//!
//! Writing `q(l)` for the path-length pmf, `a` for the compromised node and
//! `n` for the system size, the adversary's observation falls into exactly
//! one of:
//!
//! | class | probability | posterior entropy |
//! |-------|-------------|-------------------|
//! | sender is `a` | `1/n` | `0` |
//! | `a` is the last intermediate | `P[L≥1]/n` | `h(α) + (1-α)·log2(n-2)`, `α = q(1)/P[L≥1]` |
//! | `a` is second-to-last | `P[L≥2]/n` | `h(β) + (1-β)·log2(n-3)`, `β = q(2)/P[L≥2]` |
//! | `a` is in the ambiguous middle | `E[(L-2)⁺]/n` | `h(γ) + (1-γ)·log2(n-4)`, `γ = P[L≥3]/E[(L-2)⁺]` |
//! | `a` is off the path | `(n-1-E[L])/n` | entropy of `{q(0)} ∪ (n-2)×{W}` |
//!
//! where `h` is the binary entropy and
//! `W = Σ_{l≥1} q(l)·(n-3)_{l-1}/(n-1)_l` is the per-candidate weight of a
//! hidden sender in the off-path class.

use crate::dist::PathLengthDist;
use crate::error::{Error, Result};
use crate::mathutil::{binary_entropy_bits, entropy_bits_grouped, LnFact};

fn check_n(n: usize) -> Result<()> {
    if n < 5 {
        return Err(Error::InvalidModel(format!(
            "closed forms assume n >= 5 so that all candidate pools are nonempty (got n={n})"
        )));
    }
    Ok(())
}

/// General closed-form anonymity degree for `c = 1` and an arbitrary
/// path-length distribution on simple paths.
///
/// This is an independent implementation of the same quantity that
/// [`crate::engine::anonymity_degree`] computes for `c = 1`; the two agree
/// to floating-point precision (see tests).
///
/// # Errors
///
/// Returns [`Error::InvalidModel`] for `n < 5` and
/// [`Error::InvalidDistribution`] if the support exceeds `n - 1`.
pub fn anonymity_degree_c1(n: usize, dist: &PathLengthDist) -> Result<f64> {
    check_n(n)?;
    if dist.max_len() > n - 1 {
        return Err(Error::InvalidDistribution(format!(
            "support exceeds n-1={} for simple paths",
            n - 1
        )));
    }
    let nf = n as f64;
    let q1 = dist.prob(1);
    let q2 = dist.prob(2);
    let t1 = dist.tail(1);
    let t2 = dist.tail(2);
    let t3 = dist.tail(3);
    let mid_mass = dist.expected_excess(2); // E[(L-2)+]
    let mean = dist.mean();

    let mut h_star = 0.0;

    // a is the last intermediate node (it forwarded to the receiver)
    if t1 > 0.0 {
        let alpha = q1 / t1;
        let h = binary_entropy_bits(alpha) + (1.0 - alpha) * ((nf - 2.0).log2());
        h_star += t1 / nf * h;
    }
    // a is second-to-last (its successor equals the receiver's predecessor)
    if t2 > 0.0 {
        let beta = q2 / t2;
        let h = binary_entropy_bits(beta) + (1.0 - beta) * ((nf - 3.0).log2());
        h_star += t2 / nf * h;
    }
    // a is somewhere in positions 1..=L-2: ambiguous between "first hop"
    // (its predecessor is the sender) and a true middle position
    if mid_mass > 0.0 {
        let gamma = t3 / mid_mass;
        let h = binary_entropy_bits(gamma) + (1.0 - gamma) * ((nf - 4.0).log2());
        h_star += mid_mass / nf * h;
    }
    // a is off the path: the receiver's predecessor might be the sender
    // (length-0 hypothesis) or an intermediate hiding the true sender
    let p_clean = (nf - 1.0 - mean) / nf;
    if p_clean > 0.0 {
        let lf = LnFact::new(n + 2);
        let mut w_hidden = 0.0;
        for (l, &ql) in dist.pmf().iter().enumerate().skip(1) {
            if ql == 0.0 {
                continue;
            }
            if let (Some(num), Some(den)) = (lf.ln_falling(n - 3, l - 1), lf.ln_falling(n - 1, l)) {
                w_hidden += ql * (num - den).exp();
            }
        }
        let h = entropy_bits_grouped(&[(dist.prob(0), 1), (w_hidden, n - 2)]);
        h_star += p_clean * h;
    }
    Ok(h_star)
}

/// **Theorem 1** — fixed-length simple paths with one compromised node.
///
/// * `l = 0`: `H* = 0` (the receiver sees the sender directly);
/// * `l ∈ {1, 2}`: `H* = (n-2)/n · log2(n-2)` — the two lengths coincide
///   (the paper's counterintuitive short-path observation);
/// * `l ≥ 3`: the compromised node is either locatable (positions `l-1`,
///   `l`) or ambiguous among positions `1..=l-2`, giving
///
/// ```text
/// H* = (l-2)/n · [ h(1/(l-2)) + (l-3)/(l-2) · log2(n-4) ]
///    + 1/n · log2(n-3) + (n-l)/n · log2(n-2).
/// ```
///
/// # Errors
///
/// Returns [`Error::InvalidModel`] for `n < 5` and
/// [`Error::InvalidDistribution`] for `l > n - 1`.
pub fn theorem1_fixed(n: usize, l: usize) -> Result<f64> {
    check_n(n)?;
    if l > n - 1 {
        return Err(Error::InvalidDistribution(format!(
            "fixed length {l} exceeds n-1={}",
            n - 1
        )));
    }
    let nf = n as f64;
    Ok(match l {
        0 => 0.0,
        1 | 2 => (nf - 2.0) / nf * (nf - 2.0).log2(),
        _ => {
            let lf = l as f64;
            let mid = lf - 2.0;
            let gamma = 1.0 / mid;
            let h_mid = binary_entropy_bits(gamma) + (1.0 - gamma) * (nf - 4.0).log2();
            mid / nf * h_mid + (nf - 3.0).log2() / nf + (nf - lf) / nf * (nf - 2.0).log2()
        }
    })
}

/// **Theorem 2** — two-point length distribution
/// `P[L = l1] = p`, `P[L = l2] = 1 - p`, one compromised node.
///
/// The paper gives this case a closed form (its eq. 13); here it is
/// evaluated through the general five-class `c = 1` formula, which reduces
/// to finitely many binary-entropy terms for a two-point distribution.
///
/// # Errors
///
/// Propagates the conditions of [`anonymity_degree_c1`] and of
/// [`PathLengthDist::two_point`].
pub fn theorem2_two_point(n: usize, l1: usize, p: f64, l2: usize) -> Result<f64> {
    let dist = PathLengthDist::two_point(l1, p, l2)?;
    anonymity_degree_c1(n, &dist)
}

/// **Theorem 3** — uniform length distribution `U(a, b)` with `3 ≤ a ≤ b`,
/// one compromised node.
///
/// With the lower bound at least 3 the anonymity degree depends on the
/// distribution **only through its mean** `Λ = (a+b)/2`:
///
/// ```text
/// H* = 1/n · [log2(n-2) + log2(n-3)]
///    + (Λ-2)/n · [ h(1/(Λ-2)) + (Λ-3)/(Λ-2) · log2(n-4) ]
///    + (n-1-Λ)/n · log2(n-2)
/// ```
///
/// In particular `U(a, b)` is exactly as anonymous as the fixed strategy
/// `F((a+b)/2)` — the paper's conclusion 2.
///
/// # Errors
///
/// Returns [`Error::InvalidDistribution`] if `a < 3`, `a > b`, or
/// `b > n - 1`, and [`Error::InvalidModel`] for `n < 5`.
pub fn theorem3_uniform(n: usize, a: usize, b: usize) -> Result<f64> {
    check_n(n)?;
    if a < 3 {
        return Err(Error::InvalidDistribution(
            "theorem 3 requires the lower bound a >= 3".into(),
        ));
    }
    if a > b || b > n - 1 {
        return Err(Error::InvalidDistribution(format!(
            "bounds out of range: a={a} b={b} n={n}"
        )));
    }
    let nf = n as f64;
    let mean = (a + b) as f64 / 2.0;
    let mid = mean - 2.0;
    let gamma = 1.0 / mid;
    let h_mid = binary_entropy_bits(gamma) + (1.0 - gamma) * (nf - 4.0).log2();
    Ok((nf - 2.0).log2() / nf
        + (nf - 3.0).log2() / nf
        + mid / nf * h_mid
        + (nf - 1.0 - mean) / nf * (nf - 2.0).log2())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine;
    use crate::model::SystemModel;

    fn engine_h(n: usize, dist: &PathLengthDist) -> f64 {
        engine::anonymity_degree(&SystemModel::new(n, 1).unwrap(), dist).unwrap()
    }

    #[test]
    fn general_c1_formula_matches_engine() {
        for n in [10usize, 37, 100] {
            for dist in [
                PathLengthDist::fixed(0),
                PathLengthDist::fixed(1),
                PathLengthDist::fixed(5),
                PathLengthDist::uniform(0, 9).unwrap(),
                PathLengthDist::uniform(1, 6).unwrap(),
                PathLengthDist::two_point(2, 0.4, 8).unwrap(),
                PathLengthDist::geometric(0.7, 9).unwrap(),
            ] {
                let closed = anonymity_degree_c1(n, &dist).unwrap();
                let exact = engine_h(n, &dist);
                assert!(
                    (closed - exact).abs() < 1e-12,
                    "n={n} dist={dist}: closed={closed} exact={exact}"
                );
            }
        }
    }

    #[test]
    fn theorem1_matches_engine_for_all_lengths() {
        let n = 100;
        for l in 0..=99 {
            let t = theorem1_fixed(n, l).unwrap();
            let e = engine_h(n, &PathLengthDist::fixed(l));
            assert!((t - e).abs() < 1e-12, "l={l}: theorem={t} engine={e}");
        }
    }

    #[test]
    fn theorem1_short_path_effect() {
        let n = 100;
        let h0 = theorem1_fixed(n, 0).unwrap();
        let h1 = theorem1_fixed(n, 1).unwrap();
        let h2 = theorem1_fixed(n, 2).unwrap();
        let h3 = theorem1_fixed(n, 3).unwrap();
        let h4 = theorem1_fixed(n, 4).unwrap();
        assert_eq!(h0, 0.0);
        assert!((h1 - h2).abs() < 1e-15);
        assert!(h3 < h2 && h2 - h3 < 1e-3);
        assert!(h4 > h2);
    }

    #[test]
    fn theorem1_long_path_effect_peak_location() {
        // the curve must rise, peak strictly inside (0, n-1), and fall
        let n = 100;
        let values: Vec<f64> = (1..=99).map(|l| theorem1_fixed(n, l).unwrap()).collect();
        let (argmax, _) = values
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        let peak = argmax + 1;
        assert!((20..=80).contains(&peak), "peak at unexpected l={peak}");
        assert!(values[98] < values[peak - 1]);
    }

    #[test]
    fn theorem2_matches_engine() {
        let n = 60;
        for (l1, p, l2) in [(1, 0.5, 4), (2, 0.25, 9), (0, 0.1, 5), (3, 0.8, 3)] {
            let t = theorem2_two_point(n, l1, p, l2).unwrap();
            let e = engine_h(n, &PathLengthDist::two_point(l1, p, l2).unwrap());
            assert!((t - e).abs() < 1e-12, "({l1},{p},{l2}): {t} vs {e}");
        }
    }

    #[test]
    fn theorem3_matches_engine_and_depends_on_mean_only() {
        let n = 100;
        for (a, b) in [(3, 9), (4, 8), (5, 7), (6, 6), (3, 21), (10, 40)] {
            let t = theorem3_uniform(n, a, b).unwrap();
            let e = engine_h(n, &PathLengthDist::uniform(a, b).unwrap());
            assert!((t - e).abs() < 1e-12, "U({a},{b}): {t} vs {e}");
        }
        // same mean, different spreads → identical value
        let h1 = theorem3_uniform(n, 3, 9).unwrap();
        let h2 = theorem3_uniform(n, 6, 6).unwrap();
        assert!((h1 - h2).abs() < 1e-15);
    }

    #[test]
    fn theorem3_equals_fixed_strategy_of_same_mean() {
        let n = 100;
        let t = theorem3_uniform(n, 4, 12).unwrap(); // mean 8
        let f = theorem1_fixed(n, 8).unwrap();
        assert!((t - f).abs() < 1e-12);
    }

    #[test]
    fn closed_forms_validate_inputs() {
        assert!(theorem1_fixed(4, 1).is_err());
        assert!(theorem1_fixed(10, 10).is_err());
        assert!(theorem3_uniform(100, 2, 9).is_err());
        assert!(theorem3_uniform(100, 9, 3).is_err());
        assert!(theorem3_uniform(100, 3, 100).is_err());
        assert!(anonymity_degree_c1(100, &PathLengthDist::fixed(100)).is_err());
    }
}
