//! The paper's optimization problem (Section 5.4, eqs. 15–17): choose the
//! path-length distribution that maximizes the anonymity degree.
//!
//! ```text
//! maximize   H*(S)
//! subject to Σ_l P[L = l] = 1,   P[L = l] ≥ 0   for l in 0..=lmax
//! ```
//!
//! and the Figure-6 variant with the additional constraint
//! `E[L] = mean` (equal rerouting overhead). Two solvers are provided:
//!
//! * [`maximize`] / [`maximize_with_mean`] — projected gradient ascent over
//!   the full distribution simplex with multiple restarts;
//! * [`best_uniform_with_mean`] — the paper's own search over the uniform
//!   family `U(L-Δ, L+Δ)` (Section 6.4).

mod projection;

pub use projection::{project_simplex, project_simplex_with_mean};

use crate::dist::PathLengthDist;
use crate::engine::simple::Evaluator;
use crate::error::{Error, Result};
use crate::model::SystemModel;

/// Result of an optimization run.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizationOutcome {
    /// The optimizing path-length distribution.
    pub dist: PathLengthDist,
    /// Its anonymity degree `H*` in bits.
    pub h_star: f64,
    /// Number of objective evaluations spent.
    pub evaluations: usize,
}

/// Tuning knobs for the projected-gradient solver. The defaults solve the
/// paper's `n = 100`, `lmax ≤ 100` instances to well below plotting
/// resolution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolverConfig {
    /// Maximum gradient iterations per restart.
    pub max_iters: usize,
    /// Stop when an iteration improves `H*` by less than this.
    pub tol: f64,
    /// Initial step size.
    pub step0: f64,
    /// Finite-difference half-width for the numerical gradient.
    pub fd_eps: f64,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            max_iters: 400,
            tol: 1e-12,
            step0: 0.25,
            fd_eps: 1e-7,
        }
    }
}

/// Maximizes `H*` over all distributions on `0..=lmax`
/// (the unconstrained problem, eqs. 15–17).
///
/// # Errors
///
/// Returns an error for cyclic-path models (optimize over the simple-path
/// model the paper analyzes) or `lmax > n - 1`.
pub fn maximize(model: &SystemModel, lmax: usize) -> Result<OptimizationOutcome> {
    maximize_with_config(model, lmax, SolverConfig::default())
}

/// [`maximize`] with explicit solver configuration.
///
/// # Errors
///
/// Same conditions as [`maximize`].
pub fn maximize_with_config(
    model: &SystemModel,
    lmax: usize,
    config: SolverConfig,
) -> Result<OptimizationOutcome> {
    let ev = Evaluator::new(model, lmax)?;
    let starts = unconstrained_starts(&ev, lmax);
    solve(&ev, lmax, starts, None, config)
}

/// Maximizes `H*` over all distributions on `0..=lmax` with expected path
/// length fixed to `mean` — the equal-overhead comparison of Figure 6.
///
/// # Errors
///
/// Returns an error for infeasible means (`mean ∉ [0, lmax]`) and the
/// conditions of [`maximize`].
pub fn maximize_with_mean(
    model: &SystemModel,
    lmax: usize,
    mean: f64,
) -> Result<OptimizationOutcome> {
    maximize_with_mean_config(model, lmax, mean, SolverConfig::default())
}

/// [`maximize_with_mean`] with explicit solver configuration.
///
/// # Errors
///
/// Same conditions as [`maximize_with_mean`].
pub fn maximize_with_mean_config(
    model: &SystemModel,
    lmax: usize,
    mean: f64,
    config: SolverConfig,
) -> Result<OptimizationOutcome> {
    if !(0.0..=lmax as f64).contains(&mean) {
        return Err(Error::Optimization(format!(
            "target mean {mean} is infeasible on support 0..={lmax}"
        )));
    }
    let ev = Evaluator::new(model, lmax)?;
    let starts = mean_starts(lmax, mean);
    solve(&ev, lmax, starts, Some(mean), config)
}

/// The paper's Section-6.4 family search: over all uniform distributions
/// `U(mean-Δ, mean+Δ)` with the given integer mean, returns the best
/// spread `Δ` and its outcome.
///
/// # Errors
///
/// Returns an error if `mean > lmax` or the model rejects the support.
pub fn best_uniform_with_mean(
    model: &SystemModel,
    lmax: usize,
    mean: usize,
) -> Result<(usize, OptimizationOutcome)> {
    if mean > lmax {
        return Err(Error::Optimization(format!(
            "mean {mean} exceeds the support bound {lmax}"
        )));
    }
    let ev = Evaluator::new(model, lmax)?;
    let mut best: Option<(usize, OptimizationOutcome)> = None;
    let mut evals = 0;
    for delta in 0..=mean.min(lmax - mean) {
        let dist = PathLengthDist::uniform(mean - delta, mean + delta)
            .expect("bounds are ordered by construction");
        let h = ev.h_star(dist.pmf());
        evals += 1;
        if best.as_ref().is_none_or(|(_, b)| h > b.h_star) {
            best = Some((
                delta,
                OptimizationOutcome {
                    dist,
                    h_star: h,
                    evaluations: evals,
                },
            ));
        }
    }
    let (delta, mut outcome) = best.expect("delta = 0 is always evaluated");
    outcome.evaluations = evals;
    Ok((delta, outcome))
}

fn unconstrained_starts(ev: &Evaluator, lmax: usize) -> Vec<Vec<f64>> {
    let mut starts = vec![vec![1.0 / (lmax + 1) as f64; lmax + 1]];
    // uniform over the upper half of the support
    let mut upper = vec![0.0; lmax + 1];
    for slot in upper.iter_mut().skip(lmax / 2) {
        *slot = 1.0;
    }
    starts.push(normalize(upper));
    // point mass at the best fixed length
    let mut best_l = 0;
    let mut best_h = f64::NEG_INFINITY;
    for l in 0..=lmax {
        let mut pmf = vec![0.0; lmax + 1];
        pmf[l] = 1.0;
        let h = ev.h_star(&pmf);
        if h > best_h {
            best_h = h;
            best_l = l;
        }
    }
    let mut point = vec![0.0; lmax + 1];
    point[best_l] = 1.0;
    starts.push(point);
    starts
}

fn mean_starts(lmax: usize, mean: f64) -> Vec<Vec<f64>> {
    let mut starts = Vec::new();
    // two-point floor/ceil mixture achieving the mean exactly
    let lo = mean.floor() as usize;
    let hi = mean.ceil() as usize;
    let mut q = vec![0.0; lmax + 1];
    if lo == hi {
        q[lo] = 1.0;
    } else {
        q[hi] = mean - lo as f64;
        q[lo] = 1.0 - q[hi];
    }
    starts.push(q);
    // symmetric band around the mean (projected to the exact constraint later)
    let halfwidth = mean.min(lmax as f64 - mean).floor() as usize;
    if halfwidth > 0 {
        let a = (mean as isize - halfwidth as isize).max(0) as usize;
        let b = (mean.ceil() as usize + halfwidth).min(lmax);
        let mut band = vec![0.0; lmax + 1];
        for slot in band.iter_mut().take(b + 1).skip(a) {
            *slot = 1.0;
        }
        if let Some(p) = project_simplex_with_mean(&normalize(band), mean) {
            starts.push(p);
        }
    }
    starts
}

fn normalize(mut v: Vec<f64>) -> Vec<f64> {
    let s: f64 = v.iter().sum();
    if s > 0.0 {
        for x in &mut v {
            *x /= s;
        }
    }
    v
}

fn project(y: &[f64], mean: Option<f64>) -> Vec<f64> {
    match mean {
        None => project_simplex(y),
        Some(m) => project_simplex_with_mean(y, m).expect("feasibility was checked before solving"),
    }
}

fn solve(
    ev: &Evaluator,
    lmax: usize,
    starts: Vec<Vec<f64>>,
    mean: Option<f64>,
    config: SolverConfig,
) -> Result<OptimizationOutcome> {
    let mut evals = 0;
    let mut best_q: Option<Vec<f64>> = None;
    let mut best_h = f64::NEG_INFINITY;

    for start in starts {
        let mut q = project(&start, mean);
        let mut h = ev.h_star(&q);
        evals += 1;
        let mut step = config.step0;
        for _ in 0..config.max_iters {
            // forward-difference gradient on the raw coordinates
            let mut grad = vec![0.0; lmax + 1];
            for l in 0..=lmax {
                let mut probe = q.clone();
                probe[l] += config.fd_eps;
                // objective treats pmf as unnormalized, so this measures the
                // directional response of H* to adding mass at l
                grad[l] = (ev.h_star(&probe) - h) / config.fd_eps;
                evals += 1;
            }
            // line search along the projected gradient direction
            let mut improved = false;
            while step > 1e-10 {
                let cand_raw: Vec<f64> = q
                    .iter()
                    .zip(&grad)
                    .map(|(&qi, &gi)| qi + step * gi)
                    .collect();
                let cand = project(&cand_raw, mean);
                let h_cand = ev.h_star(&cand);
                evals += 1;
                if h_cand > h + config.tol {
                    q = cand;
                    h = h_cand;
                    step *= 1.5;
                    improved = true;
                    break;
                }
                step *= 0.5;
            }
            if !improved {
                break;
            }
        }
        if h > best_h {
            best_h = h;
            best_q = Some(q);
        }
    }

    let q = best_q.expect("at least one start is provided");
    let dist = PathLengthDist::from_pmf(q)?;
    Ok(OptimizationOutcome {
        dist,
        h_star: best_h,
        evaluations: evals,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine;

    #[test]
    fn unconstrained_optimum_beats_every_fixed_length() {
        let model = SystemModel::new(40, 1).unwrap();
        let lmax = 20;
        let out = maximize(&model, lmax).unwrap();
        for l in 0..=lmax {
            let h = engine::anonymity_degree(&model, &PathLengthDist::fixed(l)).unwrap();
            assert!(
                out.h_star >= h - 1e-9,
                "optimum {} beaten by F({l}) = {h}",
                out.h_star
            );
        }
        // the outcome's reported value matches re-evaluating its distribution
        let recheck = engine::anonymity_degree(&model, &out.dist).unwrap();
        assert!((recheck - out.h_star).abs() < 1e-9);
    }

    #[test]
    fn unconstrained_optimum_beats_uniform_families() {
        let model = SystemModel::new(40, 1).unwrap();
        let lmax = 20;
        let out = maximize(&model, lmax).unwrap();
        for a in 0..=lmax {
            for b in a..=lmax {
                let h = engine::anonymity_degree(&model, &PathLengthDist::uniform(a, b).unwrap())
                    .unwrap();
                assert!(out.h_star >= h - 1e-9, "beaten by U({a},{b}) = {h}");
            }
        }
    }

    #[test]
    fn mean_constrained_optimum_respects_constraint_and_beats_family() {
        let model = SystemModel::new(50, 1).unwrap();
        let lmax = 30;
        let mean = 8.0;
        let out = maximize_with_mean(&model, lmax, mean).unwrap();
        assert!(
            (out.dist.mean() - mean).abs() < 1e-6,
            "mean={}",
            out.dist.mean()
        );
        let (_, family_best) = best_uniform_with_mean(&model, lmax, 8).unwrap();
        assert!(
            out.h_star >= family_best.h_star - 1e-9,
            "solver {} vs family {}",
            out.h_star,
            family_best.h_star
        );
    }

    #[test]
    fn best_uniform_with_mean_scans_all_spreads() {
        let model = SystemModel::new(100, 1).unwrap();
        let (delta, out) = best_uniform_with_mean(&model, 99, 10).unwrap();
        assert!(delta <= 10);
        // must beat (or tie) the fixed strategy of the same mean
        let fixed = engine::anonymity_degree(&model, &PathLengthDist::fixed(10)).unwrap();
        assert!(out.h_star >= fixed - 1e-12);
        assert!((out.dist.mean() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_inputs_are_rejected() {
        let model = SystemModel::new(30, 1).unwrap();
        assert!(maximize_with_mean(&model, 10, 11.0).is_err());
        assert!(maximize_with_mean(&model, 10, -1.0).is_err());
        assert!(best_uniform_with_mean(&model, 10, 11).is_err());
        assert!(maximize(&model, 30).is_err()); // lmax > n-1
    }

    #[test]
    fn optimum_stays_within_entropy_bound() {
        let model = SystemModel::new(30, 2).unwrap();
        let out = maximize(&model, 15).unwrap();
        assert!(out.h_star <= 30f64.log2());
        assert!(out.evaluations > 0);
    }
}
