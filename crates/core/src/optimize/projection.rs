//! Euclidean projections onto the feasible sets of the paper's
//! optimization problem: the probability simplex (constraints 16–17) and
//! its intersection with a fixed-mean hyperplane (the Figure-6 variant).

/// Projects `y` onto the probability simplex `{q : q ≥ 0, Σq = 1}` in
/// `O(k log k)` (Held–Wolfe–Crowder / Duchi et al.).
pub fn project_simplex(y: &[f64]) -> Vec<f64> {
    let k = y.len();
    assert!(k > 0, "cannot project an empty vector");
    let mut sorted: Vec<f64> = y.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).expect("finite values"));
    let mut cumsum = 0.0;
    let mut tau = 0.0;
    for (j, &v) in sorted.iter().enumerate() {
        cumsum += v;
        let t = (cumsum - 1.0) / (j + 1) as f64;
        if j + 1 == k || sorted[j + 1] <= t {
            tau = t;
            if j + 1 < k {
                // check the standard stopping rule: v_{j+1} <= tau < v_j region
                if sorted[j + 1] <= t {
                    break;
                }
            }
        }
    }
    y.iter().map(|&v| (v - tau).max(0.0)).collect()
}

/// Projects `y` onto `{q : q ≥ 0, Σq = 1, Σ l·q_l = mean}` — the simplex
/// intersected with the fixed-expected-length hyperplane.
///
/// Uses the KKT form `q_l = max(0, y_l - α - β·l)` and solves the two dual
/// variables by nested bisection (the total mass is monotone in `α` for
/// fixed `β`, and the resulting mean is monotone in `β`).
///
/// Returns `None` when the constraints are infeasible
/// (`mean` outside `[0, len-1]`).
pub fn project_simplex_with_mean(y: &[f64], mean: f64) -> Option<Vec<f64>> {
    let k = y.len();
    assert!(k > 0, "cannot project an empty vector");
    let max_idx = (k - 1) as f64;
    if !(0.0..=max_idx).contains(&mean) {
        return None;
    }
    // exact boundary cases: all mass pinned to an endpoint
    if mean == 0.0 {
        let mut q = vec![0.0; k];
        q[0] = 1.0;
        return Some(q);
    }
    if mean == max_idx {
        let mut q = vec![0.0; k];
        q[k - 1] = 1.0;
        return Some(q);
    }

    // inner solve: alpha(beta) such that sum max(0, y - alpha - beta l) = 1
    let solve_alpha = |beta: f64| -> f64 {
        let vals: Vec<f64> = y
            .iter()
            .enumerate()
            .map(|(l, &v)| v - beta * l as f64)
            .collect();
        let hi0 = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut lo = hi0 - 1.0;
        // expand until mass(lo) >= 1
        while vals.iter().map(|&v| (v - lo).max(0.0)).sum::<f64>() < 1.0 {
            lo -= 1.0 + (hi0 - lo);
        }
        let mut hi = hi0;
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            let mass: f64 = vals.iter().map(|&v| (v - mid).max(0.0)).sum();
            if mass > 1.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    };
    let mean_at = |beta: f64| -> f64 {
        let alpha = solve_alpha(beta);
        y.iter()
            .enumerate()
            .map(|(l, &v)| l as f64 * (v - alpha - beta * l as f64).max(0.0))
            .sum()
    };

    // outer bisection on beta: mean is non-increasing in beta
    let mut lo = -1.0;
    let mut hi = 1.0;
    let mut guard = 0;
    while mean_at(lo) < mean {
        lo *= 2.0;
        guard += 1;
        if guard > 80 {
            return None;
        }
    }
    guard = 0;
    while mean_at(hi) > mean {
        hi *= 2.0;
        guard += 1;
        if guard > 80 {
            return None;
        }
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if mean_at(mid) > mean {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let beta = 0.5 * (lo + hi);
    let alpha = solve_alpha(beta);
    let q: Vec<f64> = y
        .iter()
        .enumerate()
        .map(|(l, &v)| (v - alpha - beta * l as f64).max(0.0))
        .collect();
    // final cleanup: renormalize tiny numerical drift
    let total: f64 = q.iter().sum();
    Some(q.into_iter().map(|v| v / total).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_simplex(q: &[f64]) {
        assert!(q.iter().all(|&v| v >= -1e-12), "nonnegative: {q:?}");
        let s: f64 = q.iter().sum();
        assert!((s - 1.0).abs() < 1e-9, "sums to one: {s}");
    }

    fn mean_of(q: &[f64]) -> f64 {
        q.iter().enumerate().map(|(l, &v)| l as f64 * v).sum()
    }

    #[test]
    fn simplex_projection_of_feasible_point_is_identity() {
        let q = vec![0.2, 0.3, 0.5];
        let p = project_simplex(&q);
        for (a, b) in q.iter().zip(&p) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn simplex_projection_basics() {
        let p = project_simplex(&[10.0, 0.0, 0.0]);
        assert_simplex(&p);
        assert!((p[0] - 1.0).abs() < 1e-9);

        let p = project_simplex(&[0.5, 0.5, 0.5]);
        assert_simplex(&p);
        for &v in &p {
            assert!((v - 1.0 / 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn simplex_projection_matches_brute_force_qp() {
        // brute-force via dense grid over 3-simplex
        let y = [0.9, -0.3, 0.45, 0.2];
        let p = project_simplex(&y);
        assert_simplex(&p);
        let dist = |q: &[f64]| -> f64 { y.iter().zip(q).map(|(a, b)| (a - b) * (a - b)).sum() };
        let d_star = dist(&p);
        // random feasible candidates must not beat the projection
        let mut rng_state = 123456789u64;
        let mut rand01 = move || {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((rng_state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        for _ in 0..5000 {
            let mut cand: Vec<f64> = (0..4).map(|_| -((1.0 - rand01()).ln())).collect();
            let s: f64 = cand.iter().sum();
            for v in &mut cand {
                *v /= s;
            }
            assert!(dist(&cand) >= d_star - 1e-9);
        }
    }

    #[test]
    fn mean_projection_satisfies_constraints() {
        let y = [0.4, 0.1, 0.9, -0.2, 0.3];
        for target in [0.0, 0.5, 1.7, 2.0, 3.3, 4.0] {
            let q = project_simplex_with_mean(&y, target).unwrap();
            assert_simplex(&q);
            assert!(
                (mean_of(&q) - target).abs() < 1e-6,
                "target {target}: got mean {}",
                mean_of(&q)
            );
        }
    }

    #[test]
    fn mean_projection_rejects_infeasible_targets() {
        let y = [0.5, 0.5];
        assert!(project_simplex_with_mean(&y, -0.1).is_none());
        assert!(project_simplex_with_mean(&y, 1.5).is_none());
    }

    #[test]
    fn mean_projection_of_feasible_point_is_identity() {
        let q = vec![0.25, 0.25, 0.25, 0.25];
        let p = project_simplex_with_mean(&q, 1.5).unwrap();
        for (a, b) in q.iter().zip(&p) {
            assert!((a - b).abs() < 1e-6, "{q:?} vs {p:?}");
        }
    }

    #[test]
    fn mean_projection_is_closest_point() {
        let y = [0.8, -0.1, 0.2, 0.6];
        let target = 1.8;
        let p = project_simplex_with_mean(&y, target).unwrap();
        let dist = |q: &[f64]| -> f64 { y.iter().zip(q).map(|(a, b)| (a - b) * (a - b)).sum() };
        let d_star = dist(&p);
        // brute force: sample feasible points by projecting random vectors
        let mut rng_state = 987654321u64;
        let mut rand01 = move || {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((rng_state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        for _ in 0..2000 {
            let cand_raw: Vec<f64> = (0..4).map(|_| rand01() * 2.0 - 0.5).collect();
            if let Some(cand) = project_simplex_with_mean(&cand_raw, target) {
                assert!(dist(&cand) >= d_star - 1e-6);
            }
        }
    }
}
