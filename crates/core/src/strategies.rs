//! Route-selection strategies of the systems surveyed in Section 2 of the
//! paper, as path-length distributions.
//!
//! | system | strategy | source |
//! |--------|----------|--------|
//! | Anonymizer / LPWA | fixed, 1 intermediate proxy | Section 2 |
//! | Freedom | fixed, 3 intermediate proxies | Section 2 / \[21\] |
//! | Onion Routing I | fixed, 5 hops | Section 2 |
//! | PipeNet | 3 or 4 intermediate nodes | Section 2 |
//! | Crowds | geometric with forwarding probability `p_f` | \[14\] |
//! | Onion Routing II | Crowds-style coin-weight selection | \[19\] |

use crate::dist::PathLengthDist;
use crate::error::Result;
use crate::model::PathKind;

/// A named route-selection strategy, pairing a real system with the
/// path-length distribution and path kind it induces.
#[derive(Debug, Clone, PartialEq)]
pub struct NamedStrategy {
    /// Human-readable system name.
    pub name: &'static str,
    /// The induced path-length distribution.
    pub dist: PathLengthDist,
    /// Whether the system allows cycles on its paths.
    pub path_kind: PathKind,
}

impl std::fmt::Display for NamedStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} [{}]", self.name, self.dist)
    }
}

/// Anonymizer: a single trusted web proxy filters identifying headers.
pub fn anonymizer() -> NamedStrategy {
    NamedStrategy {
        name: "Anonymizer",
        dist: PathLengthDist::fixed(1),
        path_kind: PathKind::Simple,
    }
}

/// Lucent Personalized Web Assistant: like Anonymizer, one intermediate.
pub fn lpwa() -> NamedStrategy {
    NamedStrategy {
        name: "LPWA",
        dist: PathLengthDist::fixed(1),
        path_kind: PathKind::Simple,
    }
}

/// Freedom Network: sender-chosen routes of exactly three proxies, no
/// cycles permitted by the client UI.
pub fn freedom() -> NamedStrategy {
    NamedStrategy {
        name: "Freedom",
        dist: PathLengthDist::fixed(3),
        path_kind: PathKind::Simple,
    }
}

/// Onion Routing I: the five-node NRL deployment with forced five-hop
/// routes.
pub fn onion_routing_i() -> NamedStrategy {
    NamedStrategy {
        name: "Onion Routing I",
        dist: PathLengthDist::fixed(5),
        path_kind: PathKind::Simple,
    }
}

/// PipeNet: rerouting paths of three or four intermediate nodes (modelled
/// as an even two-point mixture).
pub fn pipenet() -> NamedStrategy {
    NamedStrategy {
        name: "PipeNet",
        dist: PathLengthDist::two_point(3, 0.5, 4).expect("valid two-point parameters"),
        path_kind: PathKind::Simple,
    }
}

/// Crowds: each jondo forwards to a random jondo with probability
/// `forward_prob` and to the receiver otherwise; cycles are allowed.
///
/// The induced length distribution is geometric with support `1..`,
/// truncated at `lmax`.
///
/// # Errors
///
/// Propagates [`PathLengthDist::geometric`] validation.
pub fn crowds(forward_prob: f64, lmax: usize) -> Result<NamedStrategy> {
    Ok(NamedStrategy {
        name: "Crowds",
        dist: PathLengthDist::geometric(forward_prob, lmax)?,
        path_kind: PathKind::Cyclic,
    })
}

/// Onion Routing II: hop count decided by repeated weighted coin flips, as
/// borrowed from Crowds; cycles may occur.
///
/// # Errors
///
/// Propagates [`PathLengthDist::geometric`] validation.
pub fn onion_routing_ii(coin_weight: f64, lmax: usize) -> Result<NamedStrategy> {
    Ok(NamedStrategy {
        name: "Onion Routing II",
        dist: PathLengthDist::geometric(coin_weight, lmax)?,
        path_kind: PathKind::Cyclic,
    })
}

/// All surveyed systems with their default parameters (Crowds uses the
/// original paper's `p_f = 3/4`; Onion Routing II a fair coin).
///
/// `lmax` truncates the geometric strategies.
pub fn surveyed_systems(lmax: usize) -> Vec<NamedStrategy> {
    vec![
        anonymizer(),
        lpwa(),
        freedom(),
        onion_routing_i(),
        pipenet(),
        crowds(0.75, lmax).expect("default parameters are valid"),
        onion_routing_ii(0.5, lmax).expect("default parameters are valid"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_strategies_have_documented_lengths() {
        assert_eq!(anonymizer().dist.mean(), 1.0);
        assert_eq!(lpwa().dist.mean(), 1.0);
        assert_eq!(freedom().dist.mean(), 3.0);
        assert_eq!(onion_routing_i().dist.mean(), 5.0);
        assert_eq!(pipenet().dist.mean(), 3.5);
    }

    #[test]
    fn crowds_expected_length_matches_formula() {
        // E[L] = 1/(1 - p_f) = 4 for p_f = 3/4
        let c = crowds(0.75, 300).unwrap();
        assert!((c.dist.mean() - 4.0).abs() < 1e-4);
        assert_eq!(c.path_kind, PathKind::Cyclic);
    }

    #[test]
    fn surveyed_list_is_complete_and_named() {
        let systems = surveyed_systems(50);
        assert_eq!(systems.len(), 7);
        let names: Vec<&str> = systems.iter().map(|s| s.name).collect();
        assert!(names.contains(&"Crowds"));
        assert!(names.contains(&"Freedom"));
        for s in &systems {
            assert!(!s.to_string().is_empty());
        }
    }
}
