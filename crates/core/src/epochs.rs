//! Multi-round dynamics: epochs, churn, compromised-set rotation, and the
//! intersection adversary's posterior accumulator.
//!
//! The paper's `H*(S)` guarantee is a *single-round* statement: one
//! message, one observation, one posterior. The classic failure mode of
//! rerouting systems is the **long-term intersection attack** (Ando et
//! al.; Mödinger et al.): a persistent sender keeps talking to the same
//! receiver across rounds while the network changes — nodes churn in and
//! out, the compromised set rotates — and the adversary folds every
//! round's posterior into one cumulative posterior that only sharpens
//! with time.
//!
//! This module provides the engine-agnostic dynamics vocabulary:
//!
//! * [`EpochSchedule`] — how many rounds, how the compromised set rotates
//!   ([`RotationPolicy`]), and how membership churns ([`ChurnModel`]);
//! * [`EpochView`] — one realized epoch: the active node set and the
//!   compromised subset, in *universe* node ids, plus the local↔universe
//!   mapping every engine uses to express per-epoch posteriors in one
//!   shared space;
//! * [`IntersectionPosterior`] — the adversary's cumulative sender
//!   posterior, folded one round at a time;
//! * [`DecayCurve`] / [`EpochStat`] — anonymity-decay reporting
//!   (`H*` per epoch, rounds-to-identification);
//! * [`estimate_decay`] — a seeded session sampler with *exact* per-round
//!   posteriors, the analytic engines' multi-round estimator.
//!
//! ## Epoch semantics and the determinism contract
//!
//! Epoch 1 (index 0) is always the one-shot threat model: every node
//! active, the last `c` nodes compromised — so multi-round results anchor
//! exactly to the single-round `H*(S)` and dynamics begin at epoch 2.
//! Every realized quantity (churn draws, rotation resampling, session
//! senders, path draws) is a pure function of the schedule, the model,
//! and a caller-provided seed, so any two engines given the same seed
//! agree on *which* network each epoch sees.
//!
//! ## Why cumulative entropy decays (and when it may not)
//!
//! Folding rounds can only help the adversary **in expectation**:
//! `H(X | E_1..E_k) ≤ H(X | E_1..E_{k-1})` (conditioning reduces
//! entropy), so the *mean* cumulative entropy over many sessions is
//! non-increasing. A single session's entropy may transiently rise — two
//! confident rounds that suspect different nodes multiply into a flatter
//! posterior — which is why [`DecayCurve`] aggregates over sessions. Two
//! per-realization guarantees do hold and are property-tested: the
//! cumulative *support* never grows (a node excluded once stays
//! excluded — the intersection attack proper), and folding the same
//! evidence again never increases entropy.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dist::PathLengthDist;
use crate::engine::{observe, sample_path_into, EvaluatorCache};
use crate::error::{Error, Result};
use crate::kernels;
use crate::mathutil::entropy_bits;
use crate::model::SystemModel;

/// How the compromised set changes from epoch to epoch.
///
/// Whatever the policy, epoch 1 always compromises the last `c` active
/// nodes — the workspace-wide one-shot convention — so single-round
/// anchors hold exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RotationPolicy {
    /// The last `c` active nodes in every epoch.
    Static,
    /// A window of `c` consecutive positions over the sorted active set,
    /// sliding by `step` positions per epoch.
    Shift {
        /// Positions the window advances each epoch.
        step: usize,
    },
    /// A fresh seeded uniform `c`-subset of the active set each epoch
    /// (from epoch 2 on).
    Resample,
}

impl RotationPolicy {
    /// Parses `static`, `shift:K`, or `resample`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the accepted forms.
    pub fn parse(s: &str) -> std::result::Result<Self, String> {
        match s.split_once(':') {
            None if s == "static" => Ok(RotationPolicy::Static),
            None if s == "resample" => Ok(RotationPolicy::Resample),
            Some(("shift", step)) => step
                .parse::<usize>()
                .map(|step| RotationPolicy::Shift { step })
                .map_err(|_| format!("rotation `{s}`: bad shift step `{step}`")),
            _ => Err(format!(
                "rotation `{s}`: expected static | shift:K | resample"
            )),
        }
    }
}

impl std::fmt::Display for RotationPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RotationPolicy::Static => write!(f, "static"),
            RotationPolicy::Shift { step } => write!(f, "shift:{step}"),
            RotationPolicy::Resample => write!(f, "resample"),
        }
    }
}

/// How membership changes from epoch to epoch.
///
/// Churn never touches epoch 1 (the one-shot anchor), and a session's
/// persistent sender simply stays silent in an epoch it sits out — the
/// adversary folds nothing for it that round (no traffic-absence
/// inference).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChurnModel {
    /// Every node is active in every epoch.
    None,
    /// From epoch 2 on, each node is independently offline with
    /// probability `rate` per epoch (an i.i.d. membership draw per
    /// `(epoch, node)` — nodes may leave and rejoin).
    Iid {
        /// Per-epoch offline probability in `[0, 1)`.
        rate: f64,
    },
}

impl ChurnModel {
    /// Parses `none`, `iid:R`, or a bare rate `R` (shorthand for
    /// `iid:R`).
    ///
    /// # Errors
    ///
    /// Returns a message naming the accepted forms or the invalid rate.
    pub fn parse(s: &str) -> std::result::Result<Self, String> {
        let rate = match s.split_once(':') {
            None if s == "none" => return Ok(ChurnModel::None),
            None => s
                .parse::<f64>()
                .map_err(|_| format!("churn `{s}`: expected none | iid:R | a rate in [0, 1)"))?,
            Some(("iid", r)) => r
                .parse::<f64>()
                .map_err(|_| format!("churn `{s}`: bad rate `{r}`"))?,
            Some(_) => return Err(format!("churn `{s}`: expected none | iid:R")),
        };
        if !(0.0..1.0).contains(&rate) {
            return Err(format!("churn `{s}`: rate must lie in [0, 1)"));
        }
        Ok(ChurnModel::Iid { rate })
    }
}

impl std::fmt::Display for ChurnModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChurnModel::None => write!(f, "none"),
            ChurnModel::Iid { rate } => write!(f, "iid:{rate}"),
        }
    }
}

/// A full multi-round scenario description: round count, rotation, and
/// churn. [`EpochSchedule::one_shot`] (one epoch, static, no churn) is
/// the classic single-round evaluation every existing pipeline runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochSchedule {
    /// Number of rounds (`>= 1`).
    pub epochs: usize,
    /// Compromised-set rotation policy.
    pub rotation: RotationPolicy,
    /// Membership churn model.
    pub churn: ChurnModel,
}

impl Default for EpochSchedule {
    fn default() -> Self {
        Self::one_shot()
    }
}

impl EpochSchedule {
    /// The single-round schedule (the pre-dynamics behavior).
    pub fn one_shot() -> Self {
        EpochSchedule {
            epochs: 1,
            rotation: RotationPolicy::Static,
            churn: ChurnModel::None,
        }
    }

    /// `epochs` static rounds without churn.
    pub fn rounds(epochs: usize) -> Self {
        EpochSchedule {
            epochs,
            ..Self::one_shot()
        }
    }

    /// Whether this is the plain single-round evaluation.
    pub fn is_one_shot(&self) -> bool {
        self.epochs == 1
            && self.rotation == RotationPolicy::Static
            && self.churn == ChurnModel::None
    }

    /// Parses the compact token form: `epochs=E` optionally followed by
    /// `;rotation=POLICY` and/or `;churn=MODEL`
    /// (e.g. `epochs=4;rotation=shift:2;churn=iid:0.25`).
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field.
    pub fn parse(s: &str) -> std::result::Result<Self, String> {
        let mut schedule = EpochSchedule::one_shot();
        let mut saw_epochs = false;
        for part in s.split(';') {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("dynamics `{s}`: expected `key=value`, got `{part}`"))?;
            match key {
                "epochs" => {
                    schedule.epochs = value
                        .parse::<usize>()
                        .ok()
                        .filter(|&e| e >= 1)
                        .ok_or_else(|| format!("dynamics `{s}`: bad epoch count `{value}`"))?;
                    saw_epochs = true;
                }
                "rotation" => schedule.rotation = RotationPolicy::parse(value)?,
                "churn" => schedule.churn = ChurnModel::parse(value)?,
                other => {
                    return Err(format!(
                        "dynamics `{s}`: unknown field `{other}` (expected epochs/rotation/churn)"
                    ))
                }
            }
        }
        if !saw_epochs {
            return Err(format!("dynamics `{s}`: missing `epochs=`"));
        }
        Ok(schedule)
    }

    /// Realizes the schedule into per-epoch views: who is active and who
    /// is compromised each round, deterministically from `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidModel`] when `epochs == 0`, `c >= n`, or
    /// churn leaves some epoch with fewer than `c + 2` active nodes (the
    /// smallest system with a nontrivial posterior).
    pub fn realize(&self, n: usize, c: usize, seed: u64) -> Result<Vec<EpochView>> {
        if self.epochs == 0 {
            return Err(Error::InvalidModel(
                "a schedule needs at least one epoch".into(),
            ));
        }
        if c + 2 > n {
            return Err(Error::InvalidModel(format!(
                "multi-round dynamics need n >= c + 2 (got n={n}, c={c})"
            )));
        }
        let mut views = Vec::with_capacity(self.epochs);
        for epoch in 0..self.epochs {
            // epoch 1 is always the one-shot anchor: full membership
            let active: Vec<usize> = if epoch == 0 {
                (0..n).collect()
            } else {
                match self.churn {
                    ChurnModel::None => (0..n).collect(),
                    ChurnModel::Iid { rate } => (0..n)
                        .filter(|&u| hash01(seed, epoch as u64, u as u64) >= rate)
                        .collect(),
                }
            };
            if active.len() < c + 2 {
                return Err(Error::InvalidModel(format!(
                    "churn left epoch {} with {} active nodes (need >= c + 2 = {})",
                    epoch + 1,
                    active.len(),
                    c + 2
                )));
            }
            let compromised = self.compromised_for(epoch, &active, c, seed);
            views.push(EpochView {
                epoch,
                active,
                compromised,
            });
        }
        Ok(views)
    }

    /// Realizes the schedule against *measured* memberships instead of
    /// its churn model: one [`EpochView`] per entry of `active_sets`,
    /// with the compromised subset chosen by this schedule's
    /// [`RotationPolicy`] exactly as [`EpochSchedule::realize`] would.
    /// This is how live networks feed real membership events (directory
    /// authority joins/leaves, gossip peer-health drops) into the same
    /// evaluation pipeline the synthetic [`ChurnModel`]s use: replaying
    /// the event log up to each evaluation point yields the active sets,
    /// and this method turns them into views. The schedule's own
    /// `epochs`/`churn` fields are ignored — the observations are the
    /// ground truth.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidModel`] when `active_sets` is empty,
    /// `c + 2 > n`, an entry is not a sorted duplicate-free subset of
    /// `0..n`, or an entry has fewer than `c + 2` members.
    pub fn realize_from_active(
        &self,
        n: usize,
        c: usize,
        seed: u64,
        active_sets: &[Vec<usize>],
    ) -> Result<Vec<EpochView>> {
        if active_sets.is_empty() {
            return Err(Error::InvalidModel(
                "measured dynamics need at least one membership set".into(),
            ));
        }
        if c + 2 > n {
            return Err(Error::InvalidModel(format!(
                "multi-round dynamics need n >= c + 2 (got n={n}, c={c})"
            )));
        }
        let mut views = Vec::with_capacity(active_sets.len());
        for (epoch, active) in active_sets.iter().enumerate() {
            let ordered = active.windows(2).all(|w| w[0] < w[1]);
            if !ordered || active.last().is_some_and(|&u| u >= n) {
                return Err(Error::InvalidModel(format!(
                    "epoch {}: active set must be sorted, duplicate-free node ids < {n}",
                    epoch + 1
                )));
            }
            if active.len() < c + 2 {
                return Err(Error::InvalidModel(format!(
                    "churn left epoch {} with {} active nodes (need >= c + 2 = {})",
                    epoch + 1,
                    active.len(),
                    c + 2
                )));
            }
            let compromised = self.compromised_for(epoch, active, c, seed);
            views.push(EpochView {
                epoch,
                active: active.clone(),
                compromised,
            });
        }
        Ok(views)
    }

    /// The compromised subset of `active` for one epoch under this
    /// schedule's rotation policy — the single selection rule shared by
    /// [`EpochSchedule::realize`] (synthetic churn) and
    /// [`EpochSchedule::realize_from_active`] (measured churn).
    fn compromised_for(&self, epoch: usize, active: &[usize], c: usize, seed: u64) -> Vec<usize> {
        let ne = active.len();
        match (epoch, self.rotation) {
            // the anchor epoch and the static policy: the last c
            // active nodes, matching the one-shot convention
            (0, _) | (_, RotationPolicy::Static) => active[ne - c..].to_vec(),
            (_, RotationPolicy::Shift { step }) => {
                let start = (ne - c + epoch * step) % ne;
                let mut chosen: Vec<usize> = (0..c).map(|k| active[(start + k) % ne]).collect();
                // a wrapped window is still a set: keep the documented
                // sorted-subset invariant
                chosen.sort_unstable();
                chosen
            }
            (_, RotationPolicy::Resample) => {
                let mut pool = active.to_vec();
                let mut rng = StdRng::seed_from_u64(mix64(seed ^ ROTATION_SALT, epoch as u64));
                for k in 0..c {
                    let j = rng.gen_range(k..pool.len());
                    pool.swap(k, j);
                }
                let mut chosen = pool[..c].to_vec();
                chosen.sort_unstable();
                chosen
            }
        }
    }
}

impl std::fmt::Display for EpochSchedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "epochs={}", self.epochs)?;
        if self.rotation != RotationPolicy::Static {
            write!(f, ";rotation={}", self.rotation)?;
        }
        if self.churn != ChurnModel::None {
            write!(f, ";churn={}", self.churn)?;
        }
        Ok(())
    }
}

/// One realized epoch: the active membership and the compromised subset,
/// both in sorted *universe* node ids. Engines evaluate the epoch over
/// the compacted local id space `0..n()` and use [`EpochView::lift`] to
/// express posteriors back in universe space for intersection folding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochView {
    /// Zero-based epoch index (epoch 1 of the schedule is index 0).
    pub epoch: usize,
    /// Active universe node ids, sorted ascending. Local id `i` is
    /// `active[i]`.
    pub active: Vec<usize>,
    /// Compromised universe node ids (a sorted subset of `active`).
    pub compromised: Vec<usize>,
}

impl EpochView {
    /// Number of active nodes this epoch (the local system size).
    pub fn n(&self) -> usize {
        self.active.len()
    }

    /// Whether universe node `u` is active this epoch.
    pub fn is_active(&self, u: usize) -> bool {
        self.active.binary_search(&u).is_ok()
    }

    /// The local id of universe node `u`, when active.
    pub fn local_of(&self, u: usize) -> Option<usize> {
        self.active.binary_search(&u).ok()
    }

    /// The compromised mask over local ids (length [`EpochView::n`]).
    pub fn local_compromised_mask(&self) -> Vec<bool> {
        let mut mask = vec![false; self.n()];
        for &u in &self.compromised {
            mask[self.local_of(u).expect("compromised nodes are active")] = true;
        }
        mask
    }

    /// The compromised ids in local space.
    pub fn local_compromised_ids(&self) -> Vec<usize> {
        self.compromised
            .iter()
            .map(|&u| self.local_of(u).expect("compromised nodes are active"))
            .collect()
    }

    /// Lifts a local-space posterior (length [`EpochView::n`]) into
    /// universe space (length `universe`): inactive nodes get zero mass —
    /// the adversary knows the membership roster, so an offline node
    /// cannot have sent this epoch's message.
    ///
    /// # Panics
    ///
    /// Panics if `local.len() != self.n()` or an active id is out of
    /// `universe` range.
    pub fn lift(&self, local: &[f64], universe: usize) -> Vec<f64> {
        assert_eq!(
            local.len(),
            self.n(),
            "posterior length must match epoch size"
        );
        let mut out = vec![0.0; universe];
        for (i, &p) in local.iter().enumerate() {
            out[self.active[i]] = p;
        }
        out
    }
}

/// The intersection adversary's cumulative sender posterior.
///
/// Rounds fold multiplicatively (Bayes with a uniform prior and
/// conditionally independent observations given the sender); the first
/// fold is a verbatim copy, so single-epoch results are **bit-identical**
/// to the one-shot posterior path. Later folds renormalize, keeping the
/// accumulator stable over arbitrarily many rounds.
///
/// ## Sparse representation
///
/// Support shrinks monotonically — a candidate zeroed once stays zero —
/// so once a fold leaves at most `universe / `[`SPARSE_SWITCH_DIVISOR`]
/// survivors the accumulator switches to a sparse `(index, weight)` pair
/// list and every subsequent `fold`/`entropy_bits`/`support`/`best_guess`
/// is `O(support)` instead of `O(universe)`. The switch is one-way and
/// **bit-preserving**: eliminated candidates carry exact `+0.0`, which is
/// the additive identity of the nonnegative left-to-right sums, so the
/// sparse arithmetic produces the same bits the dense scan would (pinned
/// by the golden-file and conformance suites, and by a differential
/// proptest). The one observable difference is validation scope: a
/// sparse fold only inspects the round posterior at surviving indices, so
/// a negative or non-finite entry at an already-eliminated index is no
/// longer detected.
///
/// After a `fold` error the accumulator state is unspecified; callers
/// are expected to discard it (every error is terminal for the session).
#[derive(Debug, Clone)]
pub struct IntersectionPosterior {
    universe: usize,
    folds: usize,
    repr: Repr,
}

/// Internal storage of the accumulator. `Uniform` is the fold-free prior
/// (no allocation at all); `Dense` mirrors the historical `Vec<f64>` over
/// the whole universe; `Sparse` keeps only the surviving support as
/// ascending `(index, weight)` pairs.
#[derive(Debug, Clone)]
enum Repr {
    Uniform,
    Dense(Vec<f64>),
    Sparse { idx: Vec<u32>, w: Vec<f64> },
}

/// A fold switches to the sparse representation once
/// `support <= universe / SPARSE_SWITCH_DIVISOR` (and indices fit `u32`).
/// Below that point the dense multiply touches at least this factor of
/// dead zeroes per surviving candidate.
pub const SPARSE_SWITCH_DIVISOR: usize = 4;

impl IntersectionPosterior {
    /// A fresh accumulator over `universe` candidate senders (uniform
    /// prior).
    pub fn new(universe: usize) -> Self {
        IntersectionPosterior {
            universe,
            folds: 0,
            repr: Repr::Uniform,
        }
    }

    /// Number of rounds folded in so far.
    pub fn folds(&self) -> usize {
        self.folds
    }

    /// Number of candidate senders (the universe size).
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Whether the accumulator currently stores only its surviving
    /// support (see the type docs). Diagnostic only — results never
    /// depend on the representation.
    pub fn is_sparse(&self) -> bool {
        matches!(self.repr, Repr::Sparse { .. })
    }

    /// Whether a post-fold support size warrants the sparse switch.
    fn prefer_sparse(support: usize, universe: usize) -> bool {
        support * SPARSE_SWITCH_DIVISOR <= universe && universe <= u32::MAX as usize
    }

    /// The sparse pair list of a dense weight vector (positive entries
    /// only, ascending index order).
    fn sparsify(weights: &[f64]) -> Repr {
        let support = weights.iter().filter(|&&w| w > 0.0).count();
        let mut idx = Vec::with_capacity(support);
        let mut w = Vec::with_capacity(support);
        for (i, &wi) in weights.iter().enumerate() {
            if wi > 0.0 {
                idx.push(i as u32);
                w.push(wi);
            }
        }
        Repr::Sparse { idx, w }
    }

    /// Folds one round's posterior into the accumulator.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidObservation`] if the posterior has the
    /// wrong length, a non-finite or negative entry (checked on the
    /// surviving support only, once sparse), or is inconsistent with
    /// every surviving candidate (zero total mass after the fold).
    pub fn fold(&mut self, round_posterior: &[f64]) -> Result<()> {
        if round_posterior.len() != self.universe {
            return Err(Error::InvalidObservation(format!(
                "round posterior has length {}, accumulator universe is {}",
                round_posterior.len(),
                self.universe
            )));
        }
        match &mut self.repr {
            Repr::Uniform => {
                if !kernels::is_valid_weights(round_posterior) {
                    return Err(Error::InvalidObservation(
                        "round posterior has a negative or non-finite entry".into(),
                    ));
                }
                // verbatim values: single-epoch results must be
                // bit-identical to the one-shot posterior path
                let support = round_posterior.iter().filter(|&&p| p > 0.0).count();
                self.repr = if Self::prefer_sparse(support, self.universe) {
                    Self::sparsify(round_posterior)
                } else {
                    Repr::Dense(round_posterior.to_vec())
                };
            }
            Repr::Dense(weights) => {
                if !kernels::is_valid_weights(round_posterior) {
                    return Err(Error::InvalidObservation(
                        "round posterior has a negative or non-finite entry".into(),
                    ));
                }
                kernels::mul_in_place(weights, round_posterior);
                let total = kernels::sum_ordered(weights);
                if total <= 0.0 {
                    return Err(Error::InvalidObservation(
                        "intersection fold eliminated every candidate sender".into(),
                    ));
                }
                kernels::div_in_place(weights, total);
                let support = weights.iter().filter(|&&w| w > 0.0).count();
                if Self::prefer_sparse(support, self.universe) {
                    self.repr = Self::sparsify(weights);
                }
            }
            Repr::Sparse { idx, w } => {
                // eliminated candidates contribute exact +0.0 to the
                // dense running total, so summing the survivors alone in
                // ascending index order reproduces its bits
                let mut total = 0.0;
                for (&i, wi) in idx.iter().zip(w.iter_mut()) {
                    let p = round_posterior[i as usize];
                    if !p.is_finite() || p < 0.0 {
                        return Err(Error::InvalidObservation(
                            "round posterior has a negative or non-finite entry".into(),
                        ));
                    }
                    *wi *= p;
                    total += *wi;
                }
                if total <= 0.0 {
                    return Err(Error::InvalidObservation(
                        "intersection fold eliminated every candidate sender".into(),
                    ));
                }
                kernels::div_in_place(w, total);
                // compact newly eliminated candidates in place
                let mut keep = 0;
                for k in 0..w.len() {
                    if w[k] > 0.0 {
                        idx[keep] = idx[k];
                        w[keep] = w[k];
                        keep += 1;
                    }
                }
                idx.truncate(keep);
                w.truncate(keep);
            }
        }
        self.folds += 1;
        Ok(())
    }

    /// The cumulative posterior, normalized to sum 1, as a dense
    /// universe-length vector. Before any fold this is the uniform prior.
    pub fn posterior(&self) -> Vec<f64> {
        match &self.repr {
            // first fold is stored verbatim (already normalized by the
            // round's own computation); renormalizing would perturb bits
            Repr::Uniform => vec![1.0 / self.universe as f64; self.universe],
            Repr::Dense(weights) => weights.clone(),
            Repr::Sparse { idx, w } => {
                let mut out = vec![0.0; self.universe];
                for (&i, &wi) in idx.iter().zip(w) {
                    out[i as usize] = wi;
                }
                out
            }
        }
    }

    /// Shannon entropy of the cumulative posterior, in bits.
    pub fn entropy_bits(&self) -> f64 {
        match &self.repr {
            Repr::Uniform => (self.universe as f64).log2(),
            Repr::Dense(weights) => entropy_bits(weights),
            // `entropy_bits` sums its normalizer left-to-right and skips
            // nonpositive entries, so the survivors alone give the same
            // bits as the dense vector
            Repr::Sparse { w, .. } => entropy_bits(w),
        }
    }

    /// Number of candidates still carrying positive mass. Monotonically
    /// non-increasing as rounds fold in — the intersection attack proper.
    pub fn support(&self) -> usize {
        match &self.repr {
            Repr::Uniform => self.universe,
            Repr::Dense(weights) => weights.iter().filter(|&&w| w > 0.0).count(),
            Repr::Sparse { w, .. } => w.len(),
        }
    }

    /// The most likely sender and its normalized cumulative posterior
    /// probability, `O(support)`. Ties resolve to the highest index (the
    /// historical dense-scan behavior); eliminated candidates never tie a
    /// positive maximum, so the sparse argmax matches the dense one.
    pub fn best_guess(&self) -> (usize, f64) {
        match &self.repr {
            // the dense scan over an all-ones prior: every candidate
            // ties, the last index wins, and the total is exactly n
            Repr::Uniform => (self.universe - 1, 1.0 / self.universe as f64),
            Repr::Dense(weights) => {
                let total = kernels::sum_ordered(weights);
                weights
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("weights are finite"))
                    .map(|(i, &w)| (i, w / total))
                    .expect("accumulator universe is nonempty")
            }
            Repr::Sparse { idx, w } => {
                let Some((k, &best)) = w
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("weights are finite"))
                else {
                    // an all-zero first fold: the dense scan returned the
                    // last index with probability 0/0
                    return (self.universe - 1, f64::NAN);
                };
                let total = kernels::sum_ordered(w);
                (idx[k] as usize, best / total)
            }
        }
    }

    /// Iterates the candidates carrying nonzero mass as
    /// `(universe index, weight)`, ascending by index.
    fn positive_entries(&self) -> Box<dyn Iterator<Item = (usize, f64)> + '_> {
        match &self.repr {
            Repr::Uniform => Box::new((0..self.universe).map(|i| (i, 1.0))),
            Repr::Dense(weights) => Box::new(
                weights
                    .iter()
                    .enumerate()
                    .filter(|&(_, &w)| w != 0.0)
                    .map(|(i, &w)| (i, w)),
            ),
            Repr::Sparse { idx, w } => Box::new(
                idx.iter()
                    .zip(w)
                    .filter(|&(_, &w)| w != 0.0)
                    .map(|(&i, &w)| (i as usize, w)),
            ),
        }
    }
}

/// Representation-agnostic equality: two accumulators are equal when
/// they agree on the universe, the fold count, and every candidate's
/// weight — whether stored dense or sparse.
impl PartialEq for IntersectionPosterior {
    fn eq(&self, other: &Self) -> bool {
        self.universe == other.universe
            && self.folds == other.folds
            && self.positive_entries().eq(other.positive_entries())
    }
}

/// A reusable universe-sized buffer for lifting local-space posteriors
/// into universe space without a fresh `O(universe)` allocation per fold
/// (the per-round `Vec` churn [`EpochView::lift`] pays).
///
/// The buffer holds zeroes between calls; [`LiftScratch::lifted`]
/// scatters the local posterior onto the active indices, hands the dense
/// view to the callback, and re-zeroes exactly the written positions —
/// `O(n_e)` maintenance instead of `O(universe)` allocate-and-zero.
#[derive(Debug)]
pub struct LiftScratch {
    buf: Vec<f64>,
}

impl LiftScratch {
    /// A zeroed scratch buffer over `universe` candidates.
    pub fn new(universe: usize) -> Self {
        LiftScratch {
            buf: vec![0.0; universe],
        }
    }

    /// Runs `f` on the universe-space lift of `local` at the sorted
    /// `active` indices — bit-identical to `f(&view.lift(local, u))` —
    /// then restores the scratch to all zeroes.
    ///
    /// # Panics
    ///
    /// Panics if `active.len() != local.len()` or an active index is out
    /// of universe range (the same contract as [`EpochView::lift`]).
    pub fn lifted<R>(&mut self, active: &[usize], local: &[f64], f: impl FnOnce(&[f64]) -> R) -> R {
        assert_eq!(
            local.len(),
            active.len(),
            "posterior length must match epoch size"
        );
        for (&u, &p) in active.iter().zip(local) {
            self.buf[u] = p;
        }
        let out = f(&self.buf);
        for &u in active {
            self.buf[u] = 0.0;
        }
        out
    }
}

/// Aggregate anonymity statistics after folding a given number of
/// epochs, over many persistent sessions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStat {
    /// One-based epoch number (epoch 1 is the one-shot anchor).
    pub epoch: usize,
    /// Mean cumulative posterior entropy over sessions, in bits — the
    /// multi-round analogue of `H*(S)`.
    pub mean_entropy_bits: f64,
    /// Standard error of that mean.
    pub std_error: f64,
    /// Fraction of sessions whose sender the cumulative posterior
    /// identifies outright (argmax correct with probability ≈ 1).
    pub identification_rate: f64,
    /// Mean number of candidate senders still carrying mass.
    pub mean_support: f64,
    /// Number of sessions aggregated.
    pub sessions: usize,
}

/// The anonymity-decay curve of a multi-round scenario: one
/// [`EpochStat`] per epoch, in epoch order.
#[derive(Debug, Clone, PartialEq)]
pub struct DecayCurve {
    /// Per-epoch cumulative statistics, `per_epoch[e]` covering epochs
    /// `1..=e+1`.
    pub per_epoch: Vec<EpochStat>,
}

impl DecayCurve {
    /// The final epoch's cumulative statistics.
    pub fn last(&self) -> &EpochStat {
        self.per_epoch
            .last()
            .expect("a curve has at least one epoch")
    }

    /// The first (anchor) epoch's statistics — comparable to the
    /// single-round `H*(S)`.
    pub fn first(&self) -> &EpochStat {
        self.per_epoch
            .first()
            .expect("a curve has at least one epoch")
    }

    /// First one-based epoch at which the identification rate reaches
    /// `threshold`, if any — "rounds to identification".
    pub fn rounds_to_identification(&self, threshold: f64) -> Option<usize> {
        self.per_epoch
            .iter()
            .find(|s| s.identification_rate >= threshold)
            .map(|s| s.epoch)
    }

    /// Whether the mean cumulative entropy is non-increasing across
    /// epochs, allowing `slack` bits of upward noise per step (use 0.0
    /// for strict monotonicity).
    pub fn entropy_non_increasing(&self, slack: f64) -> bool {
        self.per_epoch
            .windows(2)
            .all(|w| w[1].mean_entropy_bits <= w[0].mean_entropy_bits + slack)
    }
}

/// Estimates the anonymity-decay curve of `schedule` under `model` and
/// `dist` by sampling `sessions` persistent sender sessions, each
/// scored with the *exact* per-round Bayesian posterior and folded by
/// the intersection accumulator.
///
/// Each session draws its sender uniformly from the universe (the
/// paper's a-priori model) and sends one message per epoch it is active
/// in. All randomness flows from `seed`: equal arguments produce equal
/// curves, bit for bit. The realized epochs (churn, rotation) depend on
/// `seed` alone; `stream` separates only the *session* randomness, so
/// two estimators sharing a seed — e.g. independent exact and
/// Monte-Carlo sweep cells — observe the same per-epoch networks while
/// drawing independent sessions.
///
/// # Errors
///
/// Propagates schedule-realization errors and per-epoch
/// distribution-infeasibility errors (e.g. a fixed length exceeding a
/// churned epoch's `n_e - 1` on simple paths).
pub fn estimate_decay(
    model: &SystemModel,
    dist: &PathLengthDist,
    schedule: &EpochSchedule,
    sessions: usize,
    seed: u64,
    stream: u64,
) -> Result<DecayCurve> {
    estimate_decay_with(
        model,
        dist,
        schedule,
        sessions,
        seed,
        stream,
        &EvaluatorCache::new(),
    )
}

/// [`estimate_decay`] sharing fold workspaces through an external
/// [`EvaluatorCache`], so repeated estimations over the same epoch models
/// (e.g. a campaign's exact and Monte-Carlo cells sweeping strategies)
/// amortize the per-epoch table builds. Bit-identical to
/// [`estimate_decay`] on equal arguments.
///
/// # Errors
///
/// Same conditions as [`estimate_decay`].
pub fn estimate_decay_with(
    model: &SystemModel,
    dist: &PathLengthDist,
    schedule: &EpochSchedule,
    sessions: usize,
    seed: u64,
    stream: u64,
    cache: &EvaluatorCache,
) -> Result<DecayCurve> {
    if sessions == 0 {
        return Err(Error::InvalidModel("need at least one session".into()));
    }
    let n = model.n();
    let c = model.c();
    let views = schedule.realize(n, c, seed)?;
    // per-epoch local models, shared fold workspaces, and compromised
    // masks, validated up front
    let mut epochs = Vec::with_capacity(views.len());
    for view in &views {
        let local_model = SystemModel::with_path_kind(view.n(), c, model.path_kind())?;
        let workspace = cache
            .workspace(&local_model, dist)
            .map_err(|e| Error::InvalidDistribution(format!("epoch {}: {e}", view.epoch + 1)))?;
        epochs.push((view, local_model, workspace, view.local_compromised_mask()));
    }

    let mut rng = StdRng::seed_from_u64(mix64(mix64(seed, SESSION_SALT), stream));
    let mut sums = vec![0.0; views.len()];
    let mut sq_sums = vec![0.0; views.len()];
    let mut supports = vec![0.0; views.len()];
    let mut identified = vec![0usize; views.len()];
    let mut scratch: Vec<usize> = Vec::new();
    let mut path: Vec<usize> = Vec::new();
    let mut posterior: Vec<f64> = Vec::new();
    let mut lift = LiftScratch::new(n);

    for _ in 0..sessions {
        let sender = rng.gen_range(0..n);
        let mut acc = IntersectionPosterior::new(n);
        for (e, (view, local_model, workspace, mask)) in epochs.iter().enumerate() {
            if let Some(local_sender) = view.local_of(sender) {
                if mask[local_sender] {
                    // a compromised sender reports itself: delta posterior
                    posterior.clear();
                    posterior.resize(view.n(), 0.0);
                    posterior[local_sender] = 1.0;
                } else {
                    let l = dist.sample(&mut rng);
                    scratch.clear();
                    scratch.extend(0..view.n());
                    sample_path_into(
                        local_model,
                        local_sender,
                        l,
                        &mut rng,
                        &mut scratch,
                        &mut path,
                    );
                    let obs = observe(local_sender, &path, mask);
                    workspace
                        .posterior_into(&obs, mask, &mut posterior)
                        .expect("generated observations are consistent by construction");
                }
                if view.n() == n {
                    // full-membership epoch: the lift is the identity
                    acc.fold(&posterior)?;
                } else {
                    lift.lifted(&view.active, &posterior, |p| acc.fold(p))?;
                }
            }
            // an inactive sender stays silent: the round folds nothing
            // and the cumulative state carries forward
            let h = acc.entropy_bits();
            sums[e] += h;
            sq_sums[e] += h * h;
            supports[e] += acc.support() as f64;
            let (guess, p) = acc.best_guess();
            if guess == sender && p > 0.999_999 {
                identified[e] += 1;
            }
        }
    }

    let k = sessions as f64;
    let per_epoch = (0..views.len())
        .map(|e| {
            let mean = sums[e] / k;
            let var = (sq_sums[e] / k - mean * mean).max(0.0);
            EpochStat {
                epoch: e + 1,
                mean_entropy_bits: mean,
                std_error: (var / k).sqrt(),
                identification_rate: identified[e] as f64 / k,
                mean_support: supports[e] / k,
                sessions,
            }
        })
        .collect();
    Ok(DecayCurve { per_epoch })
}

/// Stream separator for rotation resampling draws.
const ROTATION_SALT: u64 = 0xB07A_7E5E_7C0A_11ED;

/// Stream separator for session sampling (senders, lengths, paths).
const SESSION_SALT: u64 = 0x5E55_10FF_DECA_F001;

/// SplitMix64-style mix of two words — the module's one deterministic
/// hashing primitive (churn draws, rotation streams, session streams all
/// derive from it).
fn mix64(a: u64, b: u64) -> u64 {
    let mut z = a
        .wrapping_add(b.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic uniform draw in `[0, 1)` for `(seed, epoch, node)` —
/// the churn coin.
fn hash01(seed: u64, epoch: u64, node: u64) -> f64 {
    (mix64(mix64(seed, epoch ^ 0xC4E1_24D1_57B0_77AB), node) >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_parse_display_round_trips() {
        for s in [
            "epochs=1",
            "epochs=4",
            "epochs=3;rotation=shift:2",
            "epochs=5;rotation=resample",
            "epochs=2;churn=iid:0.25",
            "epochs=6;rotation=shift:1;churn=iid:0.1",
        ] {
            let schedule = EpochSchedule::parse(s).unwrap();
            assert_eq!(schedule.to_string(), s);
        }
        assert!(EpochSchedule::parse("epochs=0").is_err());
        assert!(EpochSchedule::parse("rounds=3").is_err());
        assert!(EpochSchedule::parse("epochs=3;churn=iid:1.5").is_err());
        assert!(EpochSchedule::parse("epochs=3;rotation=spin").is_err());
        assert!(
            EpochSchedule::parse("churn=iid:0.5").is_err(),
            "epochs is mandatory"
        );
        // churn shorthand: a bare rate means iid
        assert_eq!(
            EpochSchedule::parse("epochs=2;churn=0.3").unwrap().churn,
            ChurnModel::Iid { rate: 0.3 }
        );
    }

    #[test]
    fn one_shot_is_the_default_and_detects_itself() {
        assert!(EpochSchedule::default().is_one_shot());
        assert!(!EpochSchedule::rounds(3).is_one_shot());
        assert!(!EpochSchedule {
            epochs: 1,
            rotation: RotationPolicy::Resample,
            churn: ChurnModel::None,
        }
        .is_one_shot());
    }

    #[test]
    fn epoch_one_is_always_the_one_shot_anchor() {
        for rotation in [
            RotationPolicy::Static,
            RotationPolicy::Shift { step: 3 },
            RotationPolicy::Resample,
        ] {
            for churn in [ChurnModel::None, ChurnModel::Iid { rate: 0.4 }] {
                let schedule = EpochSchedule {
                    epochs: 4,
                    rotation,
                    churn,
                };
                let views = schedule.realize(10, 2, 99).unwrap();
                assert_eq!(views.len(), 4);
                assert_eq!(views[0].active, (0..10).collect::<Vec<_>>());
                assert_eq!(views[0].compromised, vec![8, 9], "last c convention");
            }
        }
    }

    #[test]
    fn realize_is_deterministic_and_seed_sensitive() {
        let schedule = EpochSchedule {
            epochs: 5,
            rotation: RotationPolicy::Resample,
            churn: ChurnModel::Iid { rate: 0.3 },
        };
        let a = schedule.realize(20, 3, 7).unwrap();
        let b = schedule.realize(20, 3, 7).unwrap();
        assert_eq!(a, b);
        let c = schedule.realize(20, 3, 8).unwrap();
        assert_ne!(a, c, "a different seed draws different churn/rotation");
    }

    #[test]
    fn shift_rotation_slides_a_window() {
        let schedule = EpochSchedule {
            epochs: 3,
            rotation: RotationPolicy::Shift { step: 1 },
            churn: ChurnModel::None,
        };
        let views = schedule.realize(6, 2, 1).unwrap();
        assert_eq!(views[0].compromised, vec![4, 5]);
        assert_eq!(views[1].compromised, vec![0, 5], "wrapped window, sorted");
        assert_eq!(views[2].compromised, vec![0, 1]);
    }

    #[test]
    fn compromised_nodes_are_always_active() {
        let schedule = EpochSchedule {
            epochs: 6,
            rotation: RotationPolicy::Resample,
            churn: ChurnModel::Iid { rate: 0.5 },
        };
        for view in schedule.realize(16, 3, 42).unwrap() {
            assert_eq!(view.compromised.len(), 3);
            for &u in &view.compromised {
                assert!(view.is_active(u));
            }
            let mask = view.local_compromised_mask();
            assert_eq!(mask.iter().filter(|&&b| b).count(), 3);
        }
    }

    #[test]
    fn realize_rejects_degenerate_systems() {
        assert!(EpochSchedule::rounds(2).realize(3, 2, 1).is_err());
        // a brutal churn rate empties some epoch of a tiny system
        let schedule = EpochSchedule {
            epochs: 8,
            rotation: RotationPolicy::Static,
            churn: ChurnModel::Iid { rate: 0.95 },
        };
        assert!(schedule.realize(5, 1, 3).is_err());
    }

    #[test]
    fn lift_places_mass_on_active_universe_ids() {
        let view = EpochView {
            epoch: 1,
            active: vec![0, 2, 5],
            compromised: vec![5],
        };
        let lifted = view.lift(&[0.5, 0.25, 0.25], 6);
        assert_eq!(lifted, vec![0.5, 0.0, 0.25, 0.0, 0.0, 0.25]);
        assert_eq!(view.local_of(2), Some(1));
        assert_eq!(view.local_of(3), None);
    }

    #[test]
    fn first_fold_is_a_verbatim_copy() {
        let p = vec![0.125, 0.5, 0.375, 0.0];
        let mut acc = IntersectionPosterior::new(4);
        assert_eq!(acc.support(), 4);
        assert_eq!(acc.entropy_bits(), 2.0);
        acc.fold(&p).unwrap();
        assert_eq!(acc.posterior(), p, "bit-identical to the one-shot path");
        assert_eq!(acc.entropy_bits(), entropy_bits(&p));
        assert_eq!(acc.support(), 3);
    }

    #[test]
    fn folding_shrinks_support_and_never_resurrects_candidates() {
        let mut acc = IntersectionPosterior::new(4);
        acc.fold(&[0.25, 0.25, 0.5, 0.0]).unwrap();
        acc.fold(&[0.0, 0.5, 0.25, 0.25]).unwrap();
        let post = acc.posterior();
        assert_eq!(post[0], 0.0);
        assert_eq!(post[3], 0.0, "a node excluded once stays excluded");
        assert_eq!(acc.support(), 2);
        let total: f64 = post.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn contradictory_rounds_are_rejected() {
        let mut acc = IntersectionPosterior::new(3);
        acc.fold(&[1.0, 0.0, 0.0]).unwrap();
        assert!(acc.fold(&[0.0, 1.0, 0.0]).is_err());
        assert!(acc.fold(&[0.5, 0.5]).is_err(), "length mismatch");
        assert!(acc.fold(&[0.5, -0.1, 0.6]).is_err(), "negative mass");
    }

    #[test]
    fn best_guess_tracks_the_cumulative_argmax() {
        let mut acc = IntersectionPosterior::new(3);
        acc.fold(&[0.5, 0.3, 0.2]).unwrap();
        acc.fold(&[0.2, 0.5, 0.3]).unwrap();
        // cumulative weights: 0.10, 0.15, 0.06 -> node 1 leads
        let (guess, p) = acc.best_guess();
        assert_eq!(guess, 1);
        assert!(p > 0.4 && p < 0.6);
    }

    #[test]
    fn decay_is_deterministic_and_anchors_epoch_one() {
        let model = SystemModel::new(20, 1).unwrap();
        let dist = PathLengthDist::uniform(1, 4).unwrap();
        let schedule = EpochSchedule::rounds(3);
        let a = estimate_decay(&model, &dist, &schedule, 1500, 11, 0).unwrap();
        let b = estimate_decay(&model, &dist, &schedule, 1500, 11, 0).unwrap();
        assert_eq!(a, b, "equal seeds, equal curves, bit for bit");
        // epoch 1 is an unbiased estimate of the one-shot H*(S)
        let exact = crate::engine::anonymity_degree(&model, &dist).unwrap();
        let first = a.first();
        assert!(
            (first.mean_entropy_bits - exact).abs() <= 5.0 * first.std_error + 1e-9,
            "epoch-1 {} vs exact {exact} (se {})",
            first.mean_entropy_bits,
            first.std_error
        );
        // folding more epochs decays the mean cumulative entropy
        assert!(a.entropy_non_increasing(0.0), "{:?}", a.per_epoch);
        assert!(a.last().mean_entropy_bits < first.mean_entropy_bits);
        assert_eq!(a.per_epoch.len(), 3);
        assert!(a.per_epoch.iter().all(|s| s.sessions == 1500));
    }

    #[test]
    fn rotation_identifies_persistent_senders_eventually() {
        // with the compromised set sweeping the whole ring, every sender
        // is eventually first-hop-compromised or rotated into directly
        let model = SystemModel::new(8, 2).unwrap();
        let dist = PathLengthDist::fixed(1);
        let schedule = EpochSchedule {
            epochs: 6,
            rotation: RotationPolicy::Shift { step: 2 },
            churn: ChurnModel::None,
        };
        let curve = estimate_decay(&model, &dist, &schedule, 600, 5, 0).unwrap();
        let early = curve.first().identification_rate;
        let late = curve.last().identification_rate;
        assert!(late > early, "rotation must leak identity over time");
        assert!(curve.rounds_to_identification(late).is_some());
        assert!(curve.last().mean_support < curve.first().mean_support);
    }

    #[test]
    fn churned_epochs_shrink_candidate_support() {
        let model = SystemModel::new(24, 1).unwrap();
        let dist = PathLengthDist::uniform(1, 3).unwrap();
        let schedule = EpochSchedule {
            epochs: 4,
            rotation: RotationPolicy::Static,
            churn: ChurnModel::Iid { rate: 0.4 },
        };
        let curve = estimate_decay(&model, &dist, &schedule, 800, 21, 0).unwrap();
        // an offline node cannot have sent: churn makes the intersection
        // attack bite even without rotation
        assert!(curve.last().mean_support < curve.first().mean_support - 1.0);
        assert!(curve.entropy_non_increasing(0.0), "{:?}", curve.per_epoch);
    }

    #[test]
    fn infeasible_epochs_surface_as_errors() {
        // F(9) fits n=10 but not a churned epoch with fewer actives
        let model = SystemModel::new(10, 1).unwrap();
        let dist = PathLengthDist::fixed(9);
        let schedule = EpochSchedule {
            epochs: 6,
            rotation: RotationPolicy::Static,
            churn: ChurnModel::Iid { rate: 0.4 },
        };
        let err = estimate_decay(&model, &dist, &schedule, 10, 3, 0).unwrap_err();
        assert!(err.to_string().contains("epoch"), "{err}");
    }

    #[test]
    fn measured_memberships_realize_like_synthetic_churn() {
        // feeding realize()'s own active sets back through
        // realize_from_active must reproduce the views exactly, for
        // every rotation policy
        for rotation in [
            RotationPolicy::Static,
            RotationPolicy::Shift { step: 2 },
            RotationPolicy::Resample,
        ] {
            let schedule = EpochSchedule {
                epochs: 5,
                rotation,
                churn: ChurnModel::Iid { rate: 0.3 },
            };
            let synthetic = schedule.realize(12, 3, 77).unwrap();
            let sets: Vec<Vec<usize>> = synthetic.iter().map(|v| v.active.clone()).collect();
            let measured = schedule.realize_from_active(12, 3, 77, &sets).unwrap();
            assert_eq!(measured, synthetic, "{rotation:?}");
        }
    }

    #[test]
    fn measured_memberships_are_validated() {
        let schedule = EpochSchedule::rounds(2);
        let ok = vec![vec![0, 1, 2, 3, 4], vec![0, 1, 3, 4]];
        let views = schedule.realize_from_active(5, 1, 0, &ok).unwrap();
        assert_eq!(views[1].active, vec![0, 1, 3, 4]);
        // a departed node can never be in the compromised set
        assert!(!views[1].compromised.contains(&2));

        let empty: Vec<Vec<usize>> = Vec::new();
        assert!(schedule.realize_from_active(5, 1, 0, &empty).is_err());
        // unsorted, duplicate, out-of-range, and too-small sets
        assert!(schedule
            .realize_from_active(5, 1, 0, &[vec![1, 0, 2]])
            .is_err());
        assert!(schedule
            .realize_from_active(5, 1, 0, &[vec![0, 1, 1, 2]])
            .is_err());
        assert!(schedule
            .realize_from_active(5, 1, 0, &[vec![0, 1, 5]])
            .is_err());
        assert!(schedule
            .realize_from_active(5, 2, 0, &[vec![0, 1, 2]])
            .is_err());
    }
}
